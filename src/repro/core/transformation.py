"""The ± transformation between Boolean functions (Section 5 of the paper).

Definition 5.5 allows two moves on a Boolean function ``phi`` over the fixed
variable set ``V = {0..k}``:

* ``+(nu, l)`` — *add* the two adjacent valuations ``nu`` and ``nu^(l)``
  (both currently non-satisfying) to ``SAT(phi)``;
* ``-(nu, l)`` — *remove* the two adjacent valuations ``nu`` and ``nu^(l)``
  (both currently satisfying) from ``SAT(phi)``.

The induced equivalence ``phi ≃ phi'`` is the reflexive-transitive-symmetric
closure.  Every move preserves the Euler characteristic (the pair has one
even-size and one odd-size member), and the paper proves the converse:
``phi ≃ phi'`` iff ``e(phi) = e(phi')`` (Proposition 6.1); in particular
``e(phi) = 0`` iff ``phi ≃ ⊥`` (Proposition 5.9).

Everything here is *constructive*: the reductions return explicit
:class:`Step` sequences, which :mod:`repro.core.fragmentation` replays into
¬-∨-templates and :mod:`repro.pqe.intensional` compiles into d-D lineage
circuits.  The building blocks mirror the paper's lemmas:

* :func:`chainkill_steps` / :func:`chainswap_steps` — Lemma 5.10;
* :func:`fetch_pair` — Lemma 5.11;
* :func:`reduce_to_bottom` — Proposition 5.9;
* :func:`minimize_to_even` — Lemma 6.5;
* :func:`canonicalize` / :func:`is_canonical_form` — Lemma 6.7;
* :func:`transform` — Proposition 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import valuations as _val
from repro.core.boolean_function import BooleanFunction


@dataclass(frozen=True)
class Step:
    """One move ``±(nu, l)`` of Definition 5.5.

    ``sign`` is +1 for an addition and -1 for a removal; ``valuation`` is
    the mask of ``nu`` and ``variable`` is ``l``.
    """

    sign: int
    valuation: int
    variable: int

    def __post_init__(self) -> None:
        if self.sign not in (-1, 1):
            raise ValueError(f"sign must be ±1, got {self.sign}")
        if self.variable < 0:
            raise ValueError(
                f"variable must be non-negative, got {self.variable}"
            )

    @property
    def pair(self) -> tuple[int, int]:
        """The two valuations touched by the move, as masks."""
        return (self.valuation, _val.flip(self.valuation, self.variable))

    def inverse(self) -> "Step":
        """The move undoing this one."""
        return Step(-self.sign, self.valuation, self.variable)

    def __str__(self) -> str:
        symbol = "+" if self.sign > 0 else "-"
        members = set(_val.mask_to_set(self.valuation))
        return f"{symbol}({members or '∅'}, {self.variable})"


def apply_step(phi: BooleanFunction, step: Step) -> BooleanFunction:
    """Apply one move, validating its preconditions.

    :raises ValueError: if the two valuations are not both non-satisfying
        (for +) or both satisfying (for -).
    """
    first, second = step.pair
    bits = (1 << first) | (1 << second)
    if step.sign > 0:
        if phi.table & bits:
            raise ValueError(f"step {step} adds an already-satisfying valuation")
        return BooleanFunction(phi.nvars, phi.table | bits)
    if phi.table & bits != bits:
        raise ValueError(f"step {step} removes a non-satisfying valuation")
    return BooleanFunction(phi.nvars, phi.table & ~bits)


def apply_steps(phi: BooleanFunction, steps: list[Step]) -> BooleanFunction:
    """Apply a sequence of moves (validated one by one)."""
    current = phi
    for step in steps:
        current = apply_step(current, step)
    return current


def invert_steps(steps: list[Step]) -> list[Step]:
    """The sequence undoing ``steps`` (reverse order, inverted signs)."""
    return [step.inverse() for step in reversed(steps)]


def _step_between(first: int, second: int, add: bool) -> Step:
    """The move touching the two *adjacent* valuations ``first, second``."""
    diff = first ^ second
    if diff.bit_count() != 1:
        raise ValueError(
            f"valuations {first:#b} and {second:#b} are not adjacent"
        )
    return Step(1 if add else -1, first, diff.bit_length() - 1)


# ----------------------------------------------------------------------
# Lemma 5.10: chainkilling and chainswapping
# ----------------------------------------------------------------------


def chainkill_steps(phi: BooleanFunction, path: list[int]) -> list[Step]:
    """Lemma 5.10 (chainkilling): given a simple hypercube path
    ``nu = nu_0 - ... - nu_{n+1} = nu'`` with even interior length ``n``,
    both endpoints satisfying and all interior valuations non-satisfying,
    return moves that uncolor both endpoints (everything else unchanged).

    Following the proof: color the interior in adjacent pairs, then uncolor
    the whole path in adjacent pairs starting from ``nu``.

    :raises ValueError: if the path violates the lemma's preconditions.
    """
    _check_chain_preconditions(phi, path, last_satisfying=True)
    if (len(path) - 2) % 2 != 0:
        raise ValueError("chainkilling requires an even number of interior nodes")
    steps: list[Step] = []
    for j in range(1, len(path) - 1, 2):
        steps.append(_step_between(path[j], path[j + 1], add=True))
    for j in range(0, len(path) - 1, 2):
        steps.append(_step_between(path[j], path[j + 1], add=False))
    return steps


def chainswap_steps(phi: BooleanFunction, path: list[int]) -> list[Step]:
    """Lemma 5.10 (chainswapping): given a simple path with odd interior
    length ``n``, ``nu`` satisfying, ``nu'`` non-satisfying and the interior
    non-satisfying, return moves that uncolor ``nu`` and color ``nu'``.

    :raises ValueError: if the path violates the lemma's preconditions.
    """
    _check_chain_preconditions(phi, path, last_satisfying=False)
    if (len(path) - 2) % 2 != 1:
        raise ValueError("chainswapping requires an odd number of interior nodes")
    steps: list[Step] = []
    for j in range(1, len(path) - 1, 2):
        steps.append(_step_between(path[j], path[j + 1], add=True))
    for j in range(0, len(path) - 2, 2):
        steps.append(_step_between(path[j], path[j + 1], add=False))
    return steps


def _check_chain_preconditions(
    phi: BooleanFunction, path: list[int], last_satisfying: bool
) -> None:
    if len(path) < 2:
        raise ValueError("chain paths need at least two valuations")
    if not _val.is_simple_hypercube_path(path):
        raise ValueError("not a simple hypercube path")
    if not phi(path[0]):
        raise ValueError("the first endpoint must satisfy phi")
    if phi(path[-1]) != last_satisfying:
        kind = "satisfying" if last_satisfying else "non-satisfying"
        raise ValueError(f"the last endpoint must be {kind}")
    for interior in path[1:-1]:
        if phi(interior):
            raise ValueError("interior valuations must be non-satisfying")


# ----------------------------------------------------------------------
# Lemma 5.11: the fetching lemma
# ----------------------------------------------------------------------


def fetch_pair(phi: BooleanFunction) -> list[int]:
    """Lemma 5.11: for ``#phi != |e(phi)|``, find satisfying valuations
    ``nu, nu'`` of opposite parity joined by a simple path whose interior is
    non-satisfying; return that path.

    Follows the proof: take any two opposite-parity models, join them by the
    canonical bit-flip path, and shrink to the sub-path between the last
    model of the first parity and the first model of the second parity
    after it.

    :raises ValueError: if ``#phi = |e(phi)|`` (no opposite-parity models).
    """
    if phi.sat_count() == abs(phi.euler_characteristic()):
        raise ValueError("fetching requires models of both parities")
    even_model = odd_model = None
    for mask in phi.satisfying_masks():
        if _val.parity(mask) == 1 and even_model is None:
            even_model = mask
        elif _val.parity(mask) == -1 and odd_model is None:
            odd_model = mask
        if even_model is not None and odd_model is not None:
            break
    assert even_model is not None and odd_model is not None
    path = _val.hypercube_path(even_model, odd_model)
    start_parity = _val.parity(path[0])
    i = max(
        j
        for j, mask in enumerate(path)
        if _val.parity(mask) == start_parity and phi(mask)
    )
    i_prime = min(
        j
        for j, mask in enumerate(path)
        if j > i and _val.parity(mask) != start_parity and phi(mask)
    )
    return path[i : i_prime + 1]


# ----------------------------------------------------------------------
# Proposition 5.9: e(phi) = 0  ==>  phi ≃ ⊥
# ----------------------------------------------------------------------


def reduce_to_bottom(phi: BooleanFunction) -> list[Step]:
    """Proposition 5.9, constructively: for ``e(phi) = 0``, a sequence of
    moves transforming ``phi`` into ``⊥``.

    Loop: while models remain, fetch an opposite-parity pair (always
    possible since ``e = 0`` forces equal numbers of even and odd models)
    and chainkill it.

    :raises ValueError: if ``e(phi) != 0``.
    """
    if phi.euler_characteristic() != 0:
        raise ValueError(
            "reduce_to_bottom requires e(phi) = 0, "
            f"got {phi.euler_characteristic()}"
        )
    steps: list[Step] = []
    current = phi
    while current.sat_count() > 0:
        kill = chainkill_steps(current, fetch_pair(current))
        steps.extend(kill)
        current = apply_steps(current, kill)
    return steps


# ----------------------------------------------------------------------
# Lemma 6.5: minimize to even-size models
# ----------------------------------------------------------------------


def minimize_to_even(phi: BooleanFunction) -> list[Step]:
    """Lemma 6.5: for ``e(phi) >= 0``, moves leading to a function whose
    models all have even size.

    As in the proof: while odd-size models remain, fetch an opposite-parity
    pair and chainkill it (each kill removes one model of each parity, and
    ``e >= 0`` keeps even models at least as numerous as odd ones, so the
    fetching lemma stays applicable).

    :raises ValueError: if ``e(phi) < 0``.
    """
    if phi.euler_characteristic() < 0:
        raise ValueError("minimize_to_even requires e(phi) >= 0")
    steps: list[Step] = []
    current = phi
    while any(_val.parity(m) == -1 for m in current.satisfying_masks()):
        kill = chainkill_steps(current, fetch_pair(current))
        steps.extend(kill)
        current = apply_steps(current, kill)
    return steps


# ----------------------------------------------------------------------
# Lemma 6.7: canonical forms
# ----------------------------------------------------------------------


def is_canonical_form(phi: BooleanFunction) -> bool:
    """Definition 6.6: all models of even size, and no *bad pair* — i.e. no
    even-size non-model strictly smaller than some model (models occupy the
    smallest possible even-size valuations)."""
    if any(_val.parity(m) == -1 for m in phi.satisfying_masks()):
        return False
    return _bad_pair(phi) is None


def _bad_pair(phi: BooleanFunction) -> tuple[int, int] | None:
    """A bad pair ``(nu, nu')``: ``nu`` a model, ``nu'`` an even-size
    non-model with ``|nu'| < |nu|`` — or None.  Picks ``nu`` among the
    largest models and ``nu'`` among the smallest even non-models to make
    the progress of :func:`canonicalize` monotone."""
    models = sorted(
        phi.satisfying_masks(), key=lambda m: (-_val.popcount(m), m)
    )
    if not models:
        return None
    non_models_even = sorted(
        (
            m
            for m in range(1 << phi.nvars)
            if _val.parity(m) == 1 and not phi(m)
        ),
        key=lambda m: (_val.popcount(m), m),
    )
    for nu in models:
        for nu_prime in non_models_even:
            if _val.popcount(nu_prime) < _val.popcount(nu):
                return (nu, nu_prime)
        break  # Largest model already fails: no smaller bad pair exists.
    return None


def _descending_path(nu: int, nu_prime: int) -> list[int]:
    """The descending hypercube path from ``nu`` to ``nu_prime ⊆ nu``,
    removing the extra variables one at a time (lowest bit first)."""
    if nu_prime & ~nu:
        raise ValueError("descending path requires nu' ⊆ nu")
    path = [nu]
    current = nu
    extra = nu & ~nu_prime
    while extra:
        bit = extra & -extra
        current &= ~bit
        extra &= ~bit
        path.append(current)
    return path


def _alternating_path(start: int, end: int) -> list[int]:
    """A simple path between two same-size valuations alternating between
    their common size ``s`` (even path positions) and ``s + 1`` (odd
    positions), exchanging one element at a time.  Simple because the
    symmetric difference with ``end`` strictly shrinks."""
    if _val.popcount(start) != _val.popcount(end):
        raise ValueError("alternating path requires same-size endpoints")
    path = [start]
    current = start
    while current != end:
        add_bit = (end & ~current) & -(end & ~current)
        high = current | add_bit
        path.append(high)
        remove_bit = (current & ~end) & -(current & ~end)
        current = high & ~remove_bit
        path.append(current)
    return path


def _cascade_swap_steps(phi: BooleanFunction, path: list[int]) -> list[Step]:
    """Move a color along an alternating path (the cascade used in the
    proofs of Lemma 6.7 and Proposition 6.1, step 3).

    ``path`` alternates sizes ``s`` (even positions) and ``s + 1`` (odd
    positions); ``path[0]`` must be a model, ``path[-1]`` a non-model, and
    every odd-position node a non-model.  Even-position nodes in between
    *may* be models: writing ``i_0 = 0 < i_1 < ... < i_m`` for the model
    positions, the cascade chainswaps ``path[i_m] -> path[-1]``, then
    ``path[i_p] -> path[i_{p+1}]`` for ``p = m-1 .. 0``.  The net effect
    uncolors ``path[0]``, colors ``path[-1]`` and leaves everything else
    unchanged.
    """
    if not phi(path[0]) or phi(path[-1]):
        raise ValueError("cascade requires a model start and non-model end")
    model_positions = [
        p for p in range(0, len(path), 2) if phi(path[p])
    ]
    boundaries = model_positions + [len(path) - 1]
    steps: list[Step] = []
    current = phi
    for a, b in zip(reversed(boundaries[:-1]), reversed(boundaries[1:])):
        swap = chainswap_steps(current, path[a : b + 1])
        steps.extend(swap)
        current = apply_steps(current, swap)
    return steps


def canonicalize(phi: BooleanFunction) -> list[Step]:
    """Lemma 6.7: for a function whose models all have even size, moves
    leading to its canonical form.

    Per iteration, following the proof's two cases for a bad pair
    ``(nu, nu')``:

    * ``nu' ⊆ nu`` — walk the descending path from ``nu`` to ``nu'``, pick
      the lowest model ``nu_i`` on it with no model strictly below, and
      chainswap ``nu_i -> nu'`` (interior odd by parity, model-free by
      choice).  The multiset of model sizes strictly decreases.
    * ``nu' ⊄ nu`` — pick ``nu'' ⊆ nu`` with ``|nu''| = |nu'|``; if it is a
      model, cascade it sideways (level ``s``/``s+1`` alternating path) to
      the first non-model even node toward ``nu'``; either way finish with
      the first case on ``(nu, nu'')``.

    :raises ValueError: if some model has odd size.
    """
    if any(_val.parity(m) == -1 for m in phi.satisfying_masks()):
        raise ValueError("canonicalize requires all models of even size")
    steps: list[Step] = []
    current = phi
    while True:
        pair = _bad_pair(current)
        if pair is None:
            return steps
        nu, nu_prime = pair
        if nu_prime & ~nu == 0:
            block = _descending_swap_steps(current, nu, nu_prime)
        else:
            block = _general_bad_pair_steps(current, nu, nu_prime)
        steps.extend(block)
        current = apply_steps(current, block)


def _descending_swap_steps(
    phi: BooleanFunction, nu: int, nu_prime: int
) -> list[Step]:
    """Proof of Lemma 6.7, first case: swap the lowest obstruction-free
    model on the descending path down onto ``nu_prime``."""
    path = _descending_path(nu, nu_prime)
    last_model = max(j for j in range(len(path) - 1) if phi(path[j]))
    return chainswap_steps(phi, path[last_model:])


def _general_bad_pair_steps(
    phi: BooleanFunction, nu: int, nu_prime: int
) -> list[Step]:
    """Proof of Lemma 6.7, second case (``nu' ⊄ nu``)."""
    # nu'' ⊆ nu of size |nu'|, maximizing overlap with nu'.
    size = _val.popcount(nu_prime)
    shared = nu & nu_prime
    nu_second = shared
    filler = nu & ~nu_prime
    while _val.popcount(nu_second) > size:
        bit = nu_second & -nu_second
        nu_second &= ~bit
    while _val.popcount(nu_second) < size:
        bit = filler & -filler
        nu_second |= bit
        filler &= ~bit
    steps: list[Step] = []
    current = phi
    if current(nu_second):
        # Sideways cascade: push the color of nu'' toward nu' until the
        # first even non-model on the alternating path.
        path = _alternating_path(nu_second, nu_prime)
        first_free = min(
            p for p in range(2, len(path), 2) if not current(path[p])
        )
        cascade = _cascade_swap_steps(current, path[: first_free + 1])
        steps.extend(cascade)
        current = apply_steps(current, cascade)
    steps.extend(_descending_swap_steps(current, nu, nu_second))
    return steps


# ----------------------------------------------------------------------
# Proposition 6.1: e(phi) = e(phi')  ==>  phi ≃ phi'
# ----------------------------------------------------------------------


def transform(source: BooleanFunction, target: BooleanFunction) -> list[Step]:
    """Proposition 6.1, constructively: for ``e(source) = e(target)``, a
    sequence of moves transforming ``source`` into ``target``.

    Mirrors Section 6.2: for ``e = 0`` both reduce to ⊥; for ``e > 0`` both
    reduce to canonical forms (Lemmas 6.5 and 6.7), which are then aligned
    at their top level by cascades through level ``M + 1`` (third step of
    the proof); for ``e < 0`` the problem is conjugated by the hypercube
    automorphism flipping variable 0 (which negates ``e`` and commutes with
    the moves — our effective replacement for the proof's appeal to
    ``e(¬phi) = -e(phi)``, since ¬ itself is not a ≃-move).

    :raises ValueError: if the Euler characteristics differ or the variable
        sets mismatch.
    """
    if source.nvars != target.nvars:
        raise ValueError("transform requires functions on the same variables")
    if source.euler_characteristic() != target.euler_characteristic():
        raise ValueError("transform requires equal Euler characteristics")
    euler = source.euler_characteristic()
    if euler == 0:
        forward = reduce_to_bottom(source)
        backward = invert_steps(reduce_to_bottom(target))
        return forward + backward
    if euler < 0:
        flip_var = 0
        flipped = transform(
            _parity_flip(source, flip_var), _parity_flip(target, flip_var)
        )
        return [
            Step(s.sign, _val.flip(s.valuation, flip_var), s.variable)
            for s in flipped
        ]

    forward = minimize_to_even(source)
    source_even = apply_steps(source, forward)
    canon_fwd = canonicalize(source_even)
    source_canon = apply_steps(source_even, canon_fwd)
    forward += canon_fwd

    backward = minimize_to_even(target)
    target_even = apply_steps(target, backward)
    canon_bwd = canonicalize(target_even)
    target_canon = apply_steps(target_even, canon_bwd)
    backward += canon_bwd

    align = _align_canonical(source_canon, target_canon)
    return forward + align + invert_steps(backward)


def _parity_flip(phi: BooleanFunction, var: int) -> BooleanFunction:
    """The function ``nu -> phi(nu^(var))``: a hypercube automorphism that
    exchanges parities, hence negates the Euler characteristic."""
    table = 0
    for mask in range(1 << phi.nvars):
        if phi(_val.flip(mask, var)):
            table |= 1 << mask
    return BooleanFunction(phi.nvars, table)


def _align_canonical(
    source: BooleanFunction, target: BooleanFunction
) -> list[Step]:
    """Third step of the proof of Proposition 6.1: two canonical forms with
    equal model counts agree on every level below their (common) maximal
    model size ``M`` and may differ only at level ``M``; cascades through
    level ``M + 1`` move the excess models across, two mismatches at a
    time."""
    if source.sat_count() != target.sat_count():
        raise AssertionError("canonical forms must have equal model counts")
    steps: list[Step] = []
    current = source
    while current != target:
        nu = next(m for m in current.satisfying_masks() if not target(m))
        nu_prime = next(
            m for m in target.satisfying_masks() if not current(m)
        )
        if _val.popcount(nu) != _val.popcount(nu_prime):
            raise AssertionError(
                "canonical forms differ below the top level"
            )
        if _val.popcount(nu) >= current.nvars:
            raise AssertionError("no headroom above the top level")
        path = _alternating_path(nu, nu_prime)
        cascade = _cascade_swap_steps(current, path)
        steps.extend(cascade)
        current = apply_steps(current, cascade)
    return steps


def are_equivalent(phi: BooleanFunction, psi: BooleanFunction) -> bool:
    """``phi ≃ psi`` — by Proposition 6.1, equivalent to ``e(phi) = e(psi)``
    (the nontrivial direction is exercised constructively by
    :func:`transform` and the tests)."""
    return (
        phi.nvars == psi.nvars
        and phi.euler_characteristic() == psi.euler_characteristic()
    )


def verify_steps(
    source: BooleanFunction, steps: list[Step], target: BooleanFunction
) -> bool:
    """Whether replaying ``steps`` (with all preconditions enforced) maps
    ``source`` to ``target`` — the checkable certificate of ``≃``."""
    try:
        return apply_steps(source, steps) == target
    except ValueError:
        return False

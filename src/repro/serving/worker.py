"""The process serving backend: worker processes behind the Shard policy
front end.

:class:`ProcessShard` subclasses :class:`~repro.serving.shard.Shard` and
overrides exactly the route-compute hooks (``_ensure_compiled`` and the
five ``_execute_*`` methods) with RPCs into a dedicated worker process.
Everything else — microbatch fusion, admission control, deadlines,
degradation, retries, circuit breaker, fault injection, stats counters —
is inherited unchanged and runs in the submitting process, which is what
makes the two backends bit-for-float identical and lets seeded
:class:`~repro.serving.faults.FaultInjector` streams replay identically
across them.

What crosses the process boundary, and what does not:

* **Queries** travel as tagged envelopes: h-queries as
  ``("h", k, nvars, truth table)`` integer tuples, general UCQs/CQs as
  nested tuples of atoms with variables and constants tagged apart —
  never as pickled query objects.
* **Instance content** travels once per shard key: declared relations
  and facts, pickled over the control pipe at first use.
* **Probability content** travels as shared-memory probability columns
  (:mod:`repro.serving.shm`), content-addressed by
  ``(Instance.shard_key(), probability_digest())`` — republished only
  when ``probability_version`` bumps.
* **Request envelopes** are tiny: segment keys, budgets as field
  tuples, remaining deadline milliseconds.
* **Compiled artifacts never cross.**  Plans, tapes, OBDD families and
  the circuit arena are rebuilt inside the worker from
  ``cached_derivation`` over the rehydrated instance — they are
  content-determined, so rebuilding reproduces the parent's floats bit
  for bit, and nothing unpicklable (locks, numpy views, codegen'd
  functions) ever touches the pipe.

The worker serves its control pipe strictly in order, so the pipe is
also the memory barrier: a segment announced before a request is
readable when the request arrives, and the parent releases a segment
lease only after the RPC that used it replied.  Worker death (crash,
kill) surfaces as a pipe EOF; every in-flight RPC — and therefore every
in-flight request future — resolves with the typed
:class:`~repro.serving.resilience.ServiceStopped`, never a naked
``BrokenPipeError``.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import replace

from repro.core.deadline import Deadline, DeadlineExceeded
from repro.db.columnar import apply_probability_columns
from repro.db.relation import Instance
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.approximate import AccuracyBudget, sampling_plan
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.engine import (
    COMPILATION_CACHE_LIMIT,
    CompilationCache,
    HardQueryError,
)
from repro.pqe.extensional import (
    ExtensionalPlanCache,
    probability_batch as extensional_probability_batch,
)
from repro.pqe.lift import UnsafeQueryError, evaluate_plan_batch
from repro.queries.cq import Atom, ConjunctiveQuery, Constant
from repro.queries.hqueries import HQuery
from repro.queries.ucq import UnionOfCQs
from repro.serving.resilience import ServiceStopped
from repro.serving.shard import Shard, _Pending
from repro.serving.shm import SegmentLease, SegmentRegistry, read_columns

# ----------------------------------------------------------------------
# Wire codecs
# ----------------------------------------------------------------------


def _encode_cq(cq: ConjunctiveQuery) -> tuple:
    return tuple(
        (
            atom.relation,
            tuple(
                ("c", term.value) if isinstance(term, Constant) else ("v", term)
                for term in atom.terms
            ),
        )
        for atom in cq.atoms
    )


def _decode_cq(encoded: tuple) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        tuple(
            Atom(
                relation,
                tuple(
                    Constant(body) if tag == "c" else body
                    for tag, body in terms
                ),
            )
            for relation, terms in encoded
        )
    )


def encode_query(query) -> tuple:
    """A query's complete content as a tagged, picklable envelope.

    H-queries keep the classic "three ints" wire form under the ``"h"``
    tag; UCQs and CQs travel as nested tuples of atoms with variables
    (``("v", name)``) and constants (``("c", value)``) tagged apart.
    """
    if isinstance(query, HQuery):
        return ("h", query.k, query.phi.nvars, query.phi.table)
    if isinstance(query, UnionOfCQs):
        return ("ucq", tuple(_encode_cq(cq) for cq in query.disjuncts))
    if isinstance(query, ConjunctiveQuery):
        return ("cq", _encode_cq(query))
    raise TypeError(
        f"cannot encode query of type {type(query).__name__} for the "
        f"worker pipe"
    )


def decode_query(encoded: tuple):
    from repro.core.boolean_function import BooleanFunction

    tag = encoded[0]
    if tag == "h":
        _, k, nvars, table = encoded
        return HQuery(k, BooleanFunction(nvars, table))
    if tag == "ucq":
        return UnionOfCQs(tuple(_decode_cq(cq) for cq in encoded[1]))
    if tag == "cq":
        return _decode_cq(encoded[1])
    raise ValueError(f"unknown query envelope tag {tag!r}")


def encode_budget(budget: AccuracyBudget) -> tuple:
    return (
        budget.epsilon,
        budget.min_samples,
        budget.max_samples,
        budget.seed,
        budget.adaptive,
        budget.interval,
        budget.delta,
    )


def decode_budget(encoded: tuple) -> AccuracyBudget:
    epsilon, min_samples, max_samples, seed, adaptive, interval, delta = (
        encoded
    )
    return AccuracyBudget(
        epsilon=epsilon,
        min_samples=min_samples,
        max_samples=max_samples,
        seed=seed,
        adaptive=adaptive,
        interval=interval,
        delta=delta,
    )


#: Error types a worker may legitimately raise, rebuilt typed on the
#: parent side.  Anything else comes back as a RuntimeError carrying the
#: original type name.
_TYPED_ERRORS = {
    "DeadlineExceeded": DeadlineExceeded,
    "HardQueryError": HardQueryError,
    "UnsafeQueryError": UnsafeQueryError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "OverflowError": OverflowError,
    "RuntimeError": RuntimeError,
}


def _rebuild_error(kind: str, message: str) -> BaseException:
    error_type = _TYPED_ERRORS.get(kind)
    if error_type is None:
        return RuntimeError(f"worker raised {kind}: {message}")
    return error_type(message)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _WorkerState:
    """Everything a worker process owns: rehydrated instances and TIDs
    keyed by their content digests, plus its own compilation and plan
    caches (rebuilt, never pickled)."""

    def __init__(self, cache_limit: int):
        self.instances: dict[int, Instance] = {}
        self.tids: dict[tuple[int, int], TupleIndependentDatabase] = {}
        self.cache = CompilationCache(cache_limit)
        self.plan_cache = ExtensionalPlanCache()

    def register_instance(self, shard_key, relations, facts) -> None:
        if shard_key in self.instances:
            return
        instance = Instance()
        for name, arity in relations:
            instance.declare(name, arity)
        for name, values in facts:
            instance.add(name, values)
        self.instances[shard_key] = instance

    def register_columns(
        self, shard_key, digest, name, count, overflow
    ) -> None:
        key = (shard_key, digest)
        if key in self.tids:
            return
        instance = self.instances[shard_key]
        tid = TupleIndependentDatabase(instance)
        apply_probability_columns(tid, read_columns(name, count, overflow))
        self.tids[key] = tid

    def tid(self, key: tuple[int, int]) -> TupleIndependentDatabase:
        return self.tids[key]


def worker_main(conn, shard_id: int, cache_limit: int) -> None:
    """The worker process loop: serve control-pipe messages in order
    until ``stop`` (or pipe EOF).  Casts (``message_id is None``) get no
    reply; calls reply ``("ok", id, payload)`` or ``("err", id, kind,
    message)`` — the loop itself never dies to a compute error."""
    state = _WorkerState(cache_limit)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op, message_id, payload = message[0], message[1], message[2:]
        if op == "stop":
            if message_id is not None:
                conn.send(("ok", message_id, None))
            break
        try:
            result = _serve_op(state, op, payload)
        except BaseException as error:  # noqa: BLE001 - crosses the pipe
            if message_id is not None:
                conn.send(
                    ("err", message_id, type(error).__name__, str(error))
                )
            continue
        if message_id is not None:
            conn.send(("ok", message_id, result))
    conn.close()


def _serve_op(state: _WorkerState, op: str, payload: tuple):
    if op == "instance":
        state.register_instance(*payload)
        return None
    if op == "columns":
        state.register_columns(*payload)
        return None
    if op == "compile":
        encoded_query, shard_key = payload
        query = decode_query(encoded_query)
        instance = state.instances[shard_key]
        compiled, hit = state.cache.get_or_compile(
            query, instance, instance.content_fingerprint()
        )
        return (hit, 0.0 if hit else compiled.compile_ms)
    if op == "intensional":
        encoded_query, keys = payload
        query = decode_query(encoded_query)
        instance = state.instances[keys[0][0]]
        compiled, _ = state.cache.get_or_compile(
            query, instance, instance.content_fingerprint()
        )
        tape = compiled.tape
        return tape.evaluate_vectors(
            [
                tape.probability_vector(state.tid(key).probability_map())
                for key in keys
            ]
        )
    if op == "extensional":
        encoded_query, keys = payload
        query = decode_query(encoded_query)
        plan, hit = state.plan_cache.get_or_build(query)
        probabilities = extensional_probability_batch(
            query, [state.tid(key) for key in keys], plan=plan
        )
        return (list(probabilities), hit)
    if op == "lifted":
        encoded_query, keys = payload
        query = decode_query(encoded_query)
        plan, hit = state.plan_cache.get_or_build(query)
        probabilities = evaluate_plan_batch(
            plan, [state.tid(key) for key in keys]
        )
        return (list(probabilities), hit)
    if op == "brute":
        encoded_query, key = payload
        query = decode_query(encoded_query)
        return float(
            probability_by_world_enumeration(query, state.tid(key))
        )
    if op == "sample":
        encoded_query, key, encoded_budget, remaining_ms = payload
        query = decode_query(encoded_query)
        deadline = (
            Deadline(remaining_ms) if remaining_ms is not None else None
        )
        plan = sampling_plan(query, state.tid(key))
        estimate = plan.run(decode_budget(encoded_budget), deadline=deadline)
        return (estimate, plan.engine)
    if op == "stats":
        return (state.cache.stats(), state.plan_cache.stats())
    raise ValueError(f"unknown worker op {op!r}")


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _start_method(requested: str | None) -> str:
    method = (
        requested
        or os.environ.get("REPRO_WORKER_START_METHOD")
        or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    )
    if method not in multiprocessing.get_all_start_methods():
        raise ValueError(
            f"start method {method!r} unavailable on this platform"
        )
    return method


class _Rpc:
    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None


class _WorkerClient:
    """The parent's handle on one worker process: a duplex control pipe
    with correlation-id RPCs, a lazily started reader thread, and typed
    death — when the pipe hits EOF every in-flight RPC resolves with
    :class:`ServiceStopped` instead of leaking a ``BrokenPipeError``."""

    def __init__(
        self,
        shard_id: int,
        *,
        cache_limit: int = COMPILATION_CACHE_LIMIT,
        start_method: str | None = None,
    ):
        self.shard_id = shard_id
        context = multiprocessing.get_context(_start_method(start_method))
        self._conn, child_conn = context.Pipe(duplex=True)
        self._process = context.Process(
            target=worker_main,
            args=(child_conn, shard_id, cache_limit),
            name=f"pqe-worker-{shard_id}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._rpcs: dict[int, _Rpc] = {}
        self._next_id = 0
        self._dead = False
        self._reader: threading.Thread | None = None

    # The reader starts lazily (not in __init__) so a service
    # constructing several ProcessShards forks every worker before any
    # parent-side helper thread exists — fork-with-threads hygiene.
    def _ensure_reader(self) -> None:
        if self._reader is None:
            self._reader = threading.Thread(
                target=self._read_loop,
                name=f"pqe-worker-{self.shard_id}-reader",
                daemon=True,
            )
            self._reader.start()

    def _read_loop(self) -> None:
        while True:
            try:
                message = self._conn.recv()
            except (EOFError, OSError):
                break
            kind, message_id = message[0], message[1]
            with self._state_lock:
                rpc = self._rpcs.pop(message_id, None)
            if rpc is None:
                continue
            if kind == "ok":
                rpc.result = message[2]
            else:
                rpc.error = _rebuild_error(message[2], message[3])
            rpc.event.set()
        self._fail_pending(
            ServiceStopped(
                f"worker process for shard {self.shard_id} terminated"
            )
        )

    def _fail_pending(self, error: BaseException) -> None:
        with self._state_lock:
            self._dead = True
            pending = list(self._rpcs.values())
            self._rpcs.clear()
        for rpc in pending:
            rpc.error = error
            rpc.event.set()

    def call(self, op: str, *payload):
        rpc = _Rpc()
        with self._state_lock:
            if self._dead:
                raise ServiceStopped(
                    f"worker process for shard {self.shard_id} is gone"
                )
            self._ensure_reader()
            message_id = self._next_id
            self._next_id += 1
            self._rpcs[message_id] = rpc
        try:
            with self._send_lock:
                self._conn.send((op, message_id, *payload))
        except (OSError, ValueError) as error:
            self._fail_pending(
                ServiceStopped(
                    f"worker process for shard {self.shard_id} is gone "
                    f"({error})"
                )
            )
        rpc.event.wait()
        if rpc.error is not None:
            raise rpc.error
        return rpc.result

    def cast(self, op: str, *payload) -> None:
        with self._state_lock:
            if self._dead:
                raise ServiceStopped(
                    f"worker process for shard {self.shard_id} is gone"
                )
            self._ensure_reader()
        try:
            with self._send_lock:
                self._conn.send((op, None, *payload))
        except (OSError, ValueError) as error:
            self._fail_pending(
                ServiceStopped(
                    f"worker process for shard {self.shard_id} is gone "
                    f"({error})"
                )
            )
            raise ServiceStopped(
                f"worker process for shard {self.shard_id} is gone"
            ) from error

    def alive(self) -> bool:
        with self._state_lock:
            return not self._dead

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker (idempotent).  Graceful (``wait=True``) asks
        and waits for the drain; otherwise the stop is cast best-effort
        and the process is joined with a short grace period, then
        terminated."""
        with self._state_lock:
            already_dead = self._dead
        if not already_dead:
            try:
                if wait:
                    self.call("stop")
                else:
                    self.cast("stop")
            except ServiceStopped:
                pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=1.0)
        self._fail_pending(
            ServiceStopped(
                f"worker process for shard {self.shard_id} stopped"
            )
        )
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ProcessShard(Shard):
    """A shard whose route compute runs in a dedicated worker process.

    The inherited policy front end is untouched; the overridden hooks
    publish probability content through the shared-memory registry and
    RPC the worker.  ``stats()`` merges the worker's cache and plan
    counters into the parent-side snapshot; ``stop()``/``close()`` shut
    the inherited pool down first (so in-flight RPCs resolve), then the
    worker, then unlink every published segment.
    """

    def __init__(
        self,
        shard_id: int,
        *,
        start_method: str | None = None,
        **kwargs,
    ):
        super().__init__(shard_id, **kwargs)
        self._registry = SegmentRegistry()
        self._client = _WorkerClient(
            shard_id,
            cache_limit=kwargs.get("cache_limit", COMPILATION_CACHE_LIMIT),
            start_method=start_method,
        )
        self._publish_lock = threading.Lock()
        self._announced: set[int] = set()

    # -- publication ---------------------------------------------------

    def _lease(self, tid: TupleIndependentDatabase) -> SegmentLease:
        """Pin (publishing as needed) ``tid``'s probability segment and
        make sure the worker has been told about it.  Holding the
        publish lock across acquire+cast keeps the announcement ordered
        before any RPC that references the key (the pipe is FIFO)."""
        from repro.db.columnar import probability_columns

        instance = tid.instance
        shard_key = instance.shard_key()
        digest = tid.probability_digest()
        with self._publish_lock:
            self._announce_locked(instance, shard_key)
            lease = self._registry.acquire(
                shard_key, digest, probability_columns(tid)
            )
            if lease.fresh:
                try:
                    self._client.cast(
                        "columns",
                        shard_key,
                        digest,
                        lease.name,
                        lease.count,
                        lease.overflow,
                    )
                except ServiceStopped:
                    self._registry.release(lease)
                    raise
        return lease

    def _announce_locked(self, instance: Instance, shard_key: int) -> None:
        if shard_key in self._announced:
            return
        relations = [
            (relation.name, relation.arity)
            for relation in instance.relations()
        ]
        facts = [
            (tuple_id.relation, tuple_id.values)
            for tuple_id in instance.tuple_ids()
        ]
        self._client.cast("instance", shard_key, relations, facts)
        self._announced.add(shard_key)

    def _announce(self, instance: Instance) -> int:
        shard_key = instance.shard_key()
        with self._publish_lock:
            self._announce_locked(instance, shard_key)
        return shard_key

    # -- route compute hooks -------------------------------------------

    def _execute_extensional(self, query, group: list[_Pending]):
        reps, positions = self._representatives(group)
        leases = [self._lease(pending.request.tid) for pending in reps]
        try:
            rep_probabilities, hit = self._client.call(
                "extensional",
                encode_query(query),
                [lease.key for lease in leases],
            )
        finally:
            for lease in leases:
                self._registry.release(lease)
        return [rep_probabilities[slot] for slot in positions], hit

    def _execute_lifted(self, query, group: list[_Pending]):
        reps, positions = self._representatives(group)
        leases = [self._lease(pending.request.tid) for pending in reps]
        try:
            rep_probabilities, hit = self._client.call(
                "lifted",
                encode_query(query),
                [lease.key for lease in leases],
            )
        finally:
            for lease in leases:
                self._registry.release(lease)
        return [rep_probabilities[slot] for slot in positions], hit

    def _ensure_compiled(self, query, head: _Pending):
        shard_key = self._announce(head.request.tid.instance)
        hit, compile_ms = self._client.call(
            "compile", encode_query(query), shard_key
        )
        return None, hit, compile_ms

    def _execute_intensional(self, query, group: list[_Pending], token):
        reps, positions = self._representatives(group)
        leases = [self._lease(pending.request.tid) for pending in reps]
        try:
            rep_probabilities = self._client.call(
                "intensional",
                encode_query(query),
                [lease.key for lease in leases],
            )
        finally:
            for lease in leases:
                self._registry.release(lease)
        return [rep_probabilities[slot] for slot in positions]

    def _execute_brute(self, query, tid) -> float:
        lease = self._lease(tid)
        try:
            return self._client.call("brute", encode_query(query), lease.key)
        finally:
            self._registry.release(lease)

    def _execute_sampling(self, query, tid, budget, wave_deadline):
        lease = self._lease(tid)
        remaining_ms = (
            wave_deadline.remaining_ms() if wave_deadline is not None else None
        )
        try:
            estimate, engine = self._client.call(
                "sample",
                encode_query(query),
                lease.key,
                encode_budget(budget),
                remaining_ms,
            )
        finally:
            self._registry.release(lease)
        return estimate, engine

    # -- observability & lifecycle -------------------------------------

    def stats(self):
        base = super().stats()
        if not self._client.alive():
            return base
        try:
            cache_stats, plan_stats = self._client.call("stats")
        except ServiceStopped:
            return base
        return replace(base, cache=cache_stats, plans=plan_stats)

    def segment_names(self) -> list[str]:
        """The currently published shared-memory segments (tests)."""
        return self._registry.live_names()

    def close(self, wait: bool = True) -> None:
        super().close(wait=wait)
        self._client.shutdown(wait=wait)
        self._registry.unlink_all()

    def stop(self, wait: bool = True) -> None:
        super().stop(wait=wait)
        self._client.shutdown(wait=wait)
        self._registry.unlink_all()

"""The process serving backend: worker processes behind the Shard policy
front end.

:class:`ProcessShard` subclasses :class:`~repro.serving.shard.Shard` and
overrides exactly the route-compute hooks (``_ensure_compiled`` and the
five ``_execute_*`` methods) with RPCs into a dedicated worker process.
Everything else — microbatch fusion, admission control, deadlines,
degradation, retries, circuit breaker, fault injection, stats counters —
is inherited unchanged and runs in the submitting process, which is what
makes the two backends bit-for-float identical and lets seeded
:class:`~repro.serving.faults.FaultInjector` streams replay identically
across them.

What crosses the process boundary, and what does not:

* **Queries** travel as tagged envelopes: h-queries as
  ``("h", k, nvars, truth table)`` integer tuples, general UCQs/CQs as
  nested tuples of atoms with variables and constants tagged apart —
  never as pickled query objects.
* **Instance content** travels once per shard key: declared relations
  and facts, pickled over the control pipe at first use.
* **Probability content** travels as shared-memory probability columns
  (:mod:`repro.serving.shm`), content-addressed by
  ``(Instance.shard_key(), probability_digest())`` — republished only
  when ``probability_version`` bumps.
* **Request envelopes** are tiny: segment keys, budgets as field
  tuples, remaining deadline milliseconds.
* **Compiled artifacts never cross.**  Plans, tapes, OBDD families and
  the circuit arena are rebuilt inside the worker from
  ``cached_derivation`` over the rehydrated instance — they are
  content-determined, so rebuilding reproduces the parent's floats bit
  for bit, and nothing unpicklable (locks, numpy views, codegen'd
  functions) ever touches the pipe.

The worker serves its control pipe strictly in order, so the pipe is
also the memory barrier: a segment announced before a request is
readable when the request arrives, and the parent releases a segment
lease only after the RPC that used it replied.  Worker death (crash,
kill) surfaces as a pipe EOF; every in-flight RPC — and therefore every
in-flight request future — resolves with the typed
:class:`~repro.serving.resilience.ServiceStopped`, never a naked
``BrokenPipeError``.

**Supervision** (:class:`_Supervisor`): death no longer leaves the
shard dark.  The reader thread's EOF (the parent-side SIGCHLD) invokes
the supervisor, which trips the shard's breaker (the failover signal —
replicated instances route to replicas while it is open), backs off
deterministically, respawns a fresh worker, and *replays* every
instance registration the shard has ever announced (kept as pickled
payloads in ``_instance_payloads``); probability columns are lazily
re-announced per ``(shard_key, digest)`` because the respawn clears the
``_announced_columns`` book.  Injected ``worker_kill`` faults use the
synchronous :meth:`_Supervisor.crash_and_respawn` path instead, so the
kill-retry-recover cycle is a pure function of the seeded fault
schedule.  After ``max_restarts`` respawns the supervisor gives up:
the shard stays dark, reports unhealthy, and fails typed.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import replace

from repro.core.deadline import Deadline, DeadlineExceeded
from repro.db.columnar import apply_probability_columns
from repro.db.relation import Instance
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.approximate import AccuracyBudget, sampling_plan
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.engine import (
    COMPILATION_CACHE_LIMIT,
    CompilationCache,
    HardQueryError,
)
from repro.pqe.extensional import (
    ExtensionalPlanCache,
    probability_batch as extensional_probability_batch,
)
from repro.pqe.lift import UnsafeQueryError, evaluate_plan_batch
from repro.queries.cq import Atom, ConjunctiveQuery, Constant
from repro.queries.hqueries import HQuery
from repro.queries.ucq import UnionOfCQs
from repro.serving.resilience import ServiceStopped, SupervisorPolicy
from repro.serving.shard import Shard, _Pending
from repro.serving.shm import SegmentLease, SegmentRegistry, read_columns
from repro.serving.stats import SupervisorStats

# ----------------------------------------------------------------------
# Wire codecs
# ----------------------------------------------------------------------


def _encode_cq(cq: ConjunctiveQuery) -> tuple:
    return tuple(
        (
            atom.relation,
            tuple(
                ("c", term.value) if isinstance(term, Constant) else ("v", term)
                for term in atom.terms
            ),
        )
        for atom in cq.atoms
    )


def _decode_cq(encoded: tuple) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        tuple(
            Atom(
                relation,
                tuple(
                    Constant(body) if tag == "c" else body
                    for tag, body in terms
                ),
            )
            for relation, terms in encoded
        )
    )


def encode_query(query) -> tuple:
    """A query's complete content as a tagged, picklable envelope.

    H-queries keep the classic "three ints" wire form under the ``"h"``
    tag; UCQs and CQs travel as nested tuples of atoms with variables
    (``("v", name)``) and constants (``("c", value)``) tagged apart.
    """
    if isinstance(query, HQuery):
        return ("h", query.k, query.phi.nvars, query.phi.table)
    if isinstance(query, UnionOfCQs):
        return ("ucq", tuple(_encode_cq(cq) for cq in query.disjuncts))
    if isinstance(query, ConjunctiveQuery):
        return ("cq", _encode_cq(query))
    raise TypeError(
        f"cannot encode query of type {type(query).__name__} for the "
        f"worker pipe"
    )


def decode_query(encoded: tuple):
    from repro.core.boolean_function import BooleanFunction

    tag = encoded[0]
    if tag == "h":
        _, k, nvars, table = encoded
        return HQuery(k, BooleanFunction(nvars, table))
    if tag == "ucq":
        return UnionOfCQs(tuple(_decode_cq(cq) for cq in encoded[1]))
    if tag == "cq":
        return _decode_cq(encoded[1])
    raise ValueError(f"unknown query envelope tag {tag!r}")


def encode_budget(budget: AccuracyBudget) -> tuple:
    return (
        budget.epsilon,
        budget.min_samples,
        budget.max_samples,
        budget.seed,
        budget.adaptive,
        budget.interval,
        budget.delta,
    )


def decode_budget(encoded: tuple) -> AccuracyBudget:
    epsilon, min_samples, max_samples, seed, adaptive, interval, delta = (
        encoded
    )
    return AccuracyBudget(
        epsilon=epsilon,
        min_samples=min_samples,
        max_samples=max_samples,
        seed=seed,
        adaptive=adaptive,
        interval=interval,
        delta=delta,
    )


#: Error types a worker may legitimately raise, rebuilt typed on the
#: parent side.  Anything else comes back as a RuntimeError carrying the
#: original type name.
_TYPED_ERRORS = {
    "DeadlineExceeded": DeadlineExceeded,
    "HardQueryError": HardQueryError,
    "UnsafeQueryError": UnsafeQueryError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "OverflowError": OverflowError,
    "RuntimeError": RuntimeError,
}


def _rebuild_error(kind: str, message: str) -> BaseException:
    error_type = _TYPED_ERRORS.get(kind)
    if error_type is None:
        return RuntimeError(f"worker raised {kind}: {message}")
    return error_type(message)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _WorkerState:
    """Everything a worker process owns: rehydrated instances and TIDs
    keyed by their content digests, plus its own compilation and plan
    caches (rebuilt, never pickled)."""

    def __init__(self, cache_limit: int):
        self.instances: dict[int, Instance] = {}
        self.tids: dict[tuple[int, int], TupleIndependentDatabase] = {}
        self.cache = CompilationCache(cache_limit)
        self.plan_cache = ExtensionalPlanCache()

    def register_instance(self, shard_key, relations, facts) -> None:
        if shard_key in self.instances:
            return
        instance = Instance()
        for name, arity in relations:
            instance.declare(name, arity)
        for name, values in facts:
            instance.add(name, values)
        self.instances[shard_key] = instance

    def register_columns(
        self, shard_key, digest, name, count, overflow
    ) -> None:
        key = (shard_key, digest)
        if key in self.tids:
            return
        instance = self.instances[shard_key]
        tid = TupleIndependentDatabase(instance)
        apply_probability_columns(tid, read_columns(name, count, overflow))
        self.tids[key] = tid

    def tid(self, key: tuple[int, int]) -> TupleIndependentDatabase:
        return self.tids[key]


def worker_main(conn, shard_id: int, cache_limit: int) -> None:
    """The worker process loop: serve control-pipe messages in order
    until ``stop`` (or pipe EOF).  Casts (``message_id is None``) get no
    reply; calls reply ``("ok", id, payload)`` or ``("err", id, kind,
    message)`` — the loop itself never dies to a compute error."""
    state = _WorkerState(cache_limit)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op, message_id, payload = message[0], message[1], message[2:]
        if op == "stop":
            if message_id is not None:
                conn.send(("ok", message_id, None))
            break
        if op == "ping":
            # Health-check fast path: answered from the loop itself so a
            # wedged _serve_op cannot fake liveness... which it could not
            # anyway (the pipe is FIFO) — but keeping ping out of
            # _serve_op keeps it free of compute-error handling.
            if message_id is not None:
                conn.send(("ok", message_id, "pong"))
            continue
        try:
            result = _serve_op(state, op, payload)
        except BaseException as error:  # noqa: BLE001 - crosses the pipe
            if message_id is not None:
                conn.send(
                    ("err", message_id, type(error).__name__, str(error))
                )
            continue
        if message_id is not None:
            conn.send(("ok", message_id, result))
    conn.close()


def _serve_op(state: _WorkerState, op: str, payload: tuple):
    if op == "instance":
        state.register_instance(*payload)
        return None
    if op == "columns":
        state.register_columns(*payload)
        return None
    if op == "compile":
        encoded_query, shard_key = payload
        query = decode_query(encoded_query)
        instance = state.instances[shard_key]
        compiled, hit = state.cache.get_or_compile(
            query, instance, instance.content_fingerprint()
        )
        return (hit, 0.0 if hit else compiled.compile_ms)
    if op == "intensional":
        encoded_query, keys = payload
        query = decode_query(encoded_query)
        instance = state.instances[keys[0][0]]
        compiled, _ = state.cache.get_or_compile(
            query, instance, instance.content_fingerprint()
        )
        tape = compiled.tape
        return tape.evaluate_vectors(
            [
                tape.probability_vector(state.tid(key).probability_map())
                for key in keys
            ]
        )
    if op == "extensional":
        encoded_query, keys = payload
        query = decode_query(encoded_query)
        plan, hit = state.plan_cache.get_or_build(query)
        probabilities = extensional_probability_batch(
            query, [state.tid(key) for key in keys], plan=plan
        )
        return (list(probabilities), hit)
    if op == "lifted":
        encoded_query, keys = payload
        query = decode_query(encoded_query)
        plan, hit = state.plan_cache.get_or_build(query)
        probabilities = evaluate_plan_batch(
            plan, [state.tid(key) for key in keys]
        )
        return (list(probabilities), hit)
    if op == "brute":
        encoded_query, key = payload
        query = decode_query(encoded_query)
        return float(
            probability_by_world_enumeration(query, state.tid(key))
        )
    if op == "sample":
        encoded_query, key, encoded_budget, remaining_ms = payload
        query = decode_query(encoded_query)
        deadline = (
            Deadline(remaining_ms) if remaining_ms is not None else None
        )
        plan = sampling_plan(query, state.tid(key))
        estimate = plan.run(decode_budget(encoded_budget), deadline=deadline)
        return (estimate, plan.engine)
    if op == "stats":
        return (state.cache.stats(), state.plan_cache.stats())
    raise ValueError(f"unknown worker op {op!r}")


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _start_method(requested: str | None) -> str:
    method = (
        requested
        or os.environ.get("REPRO_WORKER_START_METHOD")
        or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    )
    if method not in multiprocessing.get_all_start_methods():
        raise ValueError(
            f"start method {method!r} unavailable on this platform"
        )
    return method


class _Rpc:
    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None


class _WorkerClient:
    """The parent's handle on one worker process: a duplex control pipe
    with correlation-id RPCs, a lazily started reader thread, and typed
    death — when the pipe hits EOF every in-flight RPC resolves with
    :class:`ServiceStopped` instead of leaking a ``BrokenPipeError``."""

    def __init__(
        self,
        shard_id: int,
        *,
        cache_limit: int = COMPILATION_CACHE_LIMIT,
        start_method: str | None = None,
        on_death=None,
    ):
        self.shard_id = shard_id
        self._on_death = on_death
        self._closing = False
        context = multiprocessing.get_context(_start_method(start_method))
        self._conn, child_conn = context.Pipe(duplex=True)
        self._process = context.Process(
            target=worker_main,
            args=(child_conn, shard_id, cache_limit),
            name=f"pqe-worker-{shard_id}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._rpcs: dict[int, _Rpc] = {}
        self._next_id = 0
        self._dead = False
        self._reader: threading.Thread | None = None

    # The reader starts lazily (not in __init__) so a service
    # constructing several ProcessShards forks every worker before any
    # parent-side helper thread exists — fork-with-threads hygiene.
    def _ensure_reader(self) -> None:
        if self._reader is None:
            self._reader = threading.Thread(
                target=self._read_loop,
                name=f"pqe-worker-{self.shard_id}-reader",
                daemon=True,
            )
            self._reader.start()

    def _read_loop(self) -> None:
        while True:
            try:
                message = self._conn.recv()
                kind, message_id = message[0], message[1]
            except (EOFError, OSError):
                break
            except Exception:  # pragma: no cover - timing-dependent
                # A worker SIGKILLed mid-send leaves a truncated pickle
                # on the pipe: recv can then raise UnpicklingError (or
                # anything unpickling raises) instead of a clean EOF.
                # The channel is unusable either way — same as a death.
                break
            with self._state_lock:
                rpc = self._rpcs.pop(message_id, None)
            if rpc is None:
                continue
            if kind == "ok":
                rpc.result = message[2]
            else:
                rpc.error = _rebuild_error(message[2], message[3])
            rpc.event.set()
        self._fail_pending(
            ServiceStopped(
                f"worker process for shard {self.shard_id} terminated"
            )
        )
        # EOF is the parent's SIGCHLD: tell the supervisor — unless this
        # death is a deliberate shutdown, which is not a failure.  The
        # reader thread must survive a failed respawn (spawn errors at
        # interpreter teardown, a replay into an already-dead worker):
        # the failure surfaces as typed ServiceStopped on the next RPC
        # or as the fresh client's own death, never as an unhandled
        # thread exception.
        if self._on_death is not None and not self._closing:
            try:
                self._on_death(self)
            except Exception:  # pragma: no cover - timing-dependent
                pass

    def _fail_pending(self, error: BaseException) -> None:
        with self._state_lock:
            self._dead = True
            pending = list(self._rpcs.values())
            self._rpcs.clear()
        for rpc in pending:
            rpc.error = error
            rpc.event.set()

    def call(self, op: str, *payload):
        rpc = _Rpc()
        with self._state_lock:
            if self._dead:
                raise ServiceStopped(
                    f"worker process for shard {self.shard_id} is gone"
                )
            self._ensure_reader()
            message_id = self._next_id
            self._next_id += 1
            self._rpcs[message_id] = rpc
        try:
            with self._send_lock:
                self._conn.send((op, message_id, *payload))
        except (OSError, ValueError) as error:
            self._fail_pending(
                ServiceStopped(
                    f"worker process for shard {self.shard_id} is gone "
                    f"({error})"
                )
            )
        rpc.event.wait()
        if rpc.error is not None:
            raise rpc.error
        return rpc.result

    def cast(self, op: str, *payload) -> None:
        with self._state_lock:
            if self._dead:
                raise ServiceStopped(
                    f"worker process for shard {self.shard_id} is gone"
                )
            self._ensure_reader()
        try:
            with self._send_lock:
                self._conn.send((op, None, *payload))
        except (OSError, ValueError) as error:
            self._fail_pending(
                ServiceStopped(
                    f"worker process for shard {self.shard_id} is gone "
                    f"({error})"
                )
            )
            raise ServiceStopped(
                f"worker process for shard {self.shard_id} is gone"
            ) from error

    def alive(self) -> bool:
        with self._state_lock:
            return not self._dead

    def ping(self, timeout_s: float = 5.0) -> bool:
        """Health-check RPC with a timeout.  A worker that cannot answer
        within ``timeout_s`` is declared dead and SIGKILLed — the pipe
        EOF then runs the normal death path (in-flight RPCs resolve
        typed, the supervisor respawns)."""
        rpc = _Rpc()
        with self._state_lock:
            if self._dead:
                return False
            self._ensure_reader()
            message_id = self._next_id
            self._next_id += 1
            self._rpcs[message_id] = rpc
        try:
            with self._send_lock:
                self._conn.send(("ping", message_id))
        except (OSError, ValueError):
            self._fail_pending(
                ServiceStopped(
                    f"worker process for shard {self.shard_id} is gone"
                )
            )
            return False
        if rpc.event.wait(timeout_s):
            return rpc.error is None
        with self._state_lock:
            self._rpcs.pop(message_id, None)
        try:  # pragma: no cover - timing-dependent
            self._process.kill()
        except (AttributeError, OSError):
            pass
        return False

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker (idempotent).  Graceful (``wait=True``) asks
        and waits for the drain; otherwise the stop is cast best-effort
        and the process is joined with a short grace period, then
        terminated."""
        self._closing = True
        with self._state_lock:
            already_dead = self._dead
        if not already_dead:
            try:
                if wait:
                    self.call("stop")
                else:
                    self.cast("stop")
            except ServiceStopped:
                pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=1.0)
        self._fail_pending(
            ServiceStopped(
                f"worker process for shard {self.shard_id} stopped"
            )
        )
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class _Supervisor:
    """Keeps one :class:`ProcessShard`'s worker process alive.

    Two entry points: :meth:`crash_and_respawn` is the *deterministic*
    path — an injected ``worker_kill`` fault SIGKILLs the worker and
    respawns it synchronously (no breaker trip, no backoff), so by the
    time the raised :class:`~repro.serving.faults.WorkerCrashError` is
    retried a replayed worker is serving and the outcome is a pure
    function of the fault schedule.  :meth:`_on_death` is the *async*
    path — an unexpected pipe EOF (external SIGKILL, OOM, crash) trips
    the shard's breaker (per policy), sleeps a deterministic exponential
    backoff, then respawns and replays.  Both paths serialize on one
    lock; after ``max_restarts`` respawns the supervisor gives up and
    leaves the shard dark (breaker tripped, ``healthy()`` false).
    """

    def __init__(self, shard: "ProcessShard", policy: SupervisorPolicy):
        self._shard = shard
        self.policy = policy
        self._lock = threading.RLock()
        self._closing = False
        self.restarts = 0
        self.replayed_instances = 0
        self.respawn_ms = 0.0
        self.gave_up = False

    def spawn(self) -> _WorkerClient:
        return _WorkerClient(
            self._shard.shard_id,
            cache_limit=self._shard._worker_cache_limit,
            start_method=self._shard._start_method,
            on_death=self._on_death,
        )

    def shutdown(self) -> None:
        """Stop supervising (deliberate shard shutdown is not a death)."""
        with self._lock:
            self._closing = True

    def crash_and_respawn(self) -> None:
        """SIGKILL the current worker and respawn it before returning."""
        with self._lock:
            if self._closing or self.gave_up:
                return
            client = self._shard._client
            try:
                client._process.kill()
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
            client._process.join(timeout=10.0)
            # Resolve in-flight RPCs typed *now* rather than waiting for
            # the reader thread to notice the EOF.
            client._fail_pending(
                ServiceStopped(
                    f"worker process for shard {self._shard.shard_id} "
                    f"was killed"
                )
            )
            self._respawn_locked(backoff=False)

    def _on_death(self, client: _WorkerClient) -> None:
        with self._lock:
            if self._closing or client is not self._shard._client:
                return  # deliberate shutdown, or already replaced
            if (
                self.policy.trip_breaker_on_death
                and self._shard._breaker is not None
            ):
                self._shard._breaker.trip()
            self._respawn_locked(backoff=True)

    def _respawn_locked(self, backoff: bool) -> None:
        if self.restarts >= self.policy.max_restarts:
            self.gave_up = True
            if self._shard._breaker is not None:
                self._shard._breaker.trip()
            return
        if backoff:
            delay_ms = self.policy.delay_ms(self.restarts + 1)
            if delay_ms > 0:
                time.sleep(delay_ms / 1e3)
        started = time.perf_counter()
        try:
            self._shard._client._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        client = self.spawn()
        self._shard._client = client
        self.restarts += 1
        try:
            self.replayed_instances += self._shard._replay_registrations(
                client
            )
        except ServiceStopped:  # pragma: no cover - timing-dependent
            # The fresh worker died during replay; its own reader EOF
            # re-enters the supervisor with backoff.
            pass
        self.respawn_ms += (time.perf_counter() - started) * 1e3

    def stats(self, worker_alive: bool) -> SupervisorStats:
        with self._lock:
            return SupervisorStats(
                restarts=self.restarts,
                replayed_instances=self.replayed_instances,
                respawn_ms=self.respawn_ms,
                worker_alive=worker_alive,
                gave_up=self.gave_up,
            )


class ProcessShard(Shard):
    """A shard whose route compute runs in a dedicated worker process.

    The inherited policy front end is untouched; the overridden hooks
    publish probability content through the shared-memory registry and
    RPC the worker.  ``stats()`` merges the worker's cache and plan
    counters into the parent-side snapshot; ``stop()``/``close()`` shut
    the inherited pool down first (so in-flight RPCs resolve), then the
    worker, then unlink every published segment.

    The worker is *supervised* (see :class:`_Supervisor`): a died
    worker is respawned with every instance registration replayed, so a
    SIGKILL costs the in-flight requests (resolved typed) but not the
    shard.  ``registry`` lets a :class:`~repro.serving.service.
    ShardedService` share one content-addressed
    :class:`~repro.serving.shm.SegmentRegistry` across all its shards —
    replicas of an instance then share probability segments instead of
    republishing them — in which case the service owns the registry's
    lifecycle and this shard's ``stop()``/``close()`` leave it alone.
    """

    def __init__(
        self,
        shard_id: int,
        *,
        start_method: str | None = None,
        supervisor: SupervisorPolicy | None = None,
        registry: SegmentRegistry | None = None,
        **kwargs,
    ):
        super().__init__(shard_id, **kwargs)
        self._owns_registry = registry is None
        self._registry = SegmentRegistry() if registry is None else registry
        self._worker_cache_limit = kwargs.get(
            "cache_limit", COMPILATION_CACHE_LIMIT
        )
        self._start_method = start_method
        self._publish_lock = threading.Lock()
        self._announced: set[int] = set()
        #: (shard_key, digest) pairs this shard's *current* worker has
        #: been told about.  Keyed per shard (not per registry) because
        #: with a shared registry a segment published by a replica is
        #: not `fresh` here yet still unknown to this worker — and
        #: cleared on respawn, because a fresh worker knows nothing.
        self._announced_columns: set[tuple[int, int]] = set()
        #: shard_key -> (relations, facts): the registration payloads to
        #: replay into a respawned worker.
        self._instance_payloads: dict[int, tuple[list, list]] = {}
        self._supervisor = _Supervisor(
            self,
            supervisor if supervisor is not None else SupervisorPolicy(),
        )
        self._client = self._supervisor.spawn()

    # -- publication ---------------------------------------------------

    def _lease(self, tid: TupleIndependentDatabase) -> SegmentLease:
        """Pin (publishing as needed) ``tid``'s probability segment and
        make sure the worker has been told about it.  Holding the
        publish lock across acquire+cast keeps the announcement ordered
        before any RPC that references the key (the pipe is FIFO)."""
        from repro.db.columnar import probability_columns

        instance = tid.instance
        shard_key = instance.shard_key()
        digest = tid.probability_digest()
        with self._publish_lock:
            self._announce_locked(instance, shard_key)
            lease = self._registry.acquire(
                shard_key, digest, probability_columns(tid)
            )
            # Announce per (shard, worker incarnation), not per `fresh`
            # publication: with a shared registry a replica may have
            # published the segment already, and a respawned worker has
            # forgotten every announcement.
            if lease.key not in self._announced_columns:
                try:
                    self._client.cast(
                        "columns",
                        shard_key,
                        digest,
                        lease.name,
                        lease.count,
                        lease.overflow,
                    )
                except ServiceStopped:
                    self._registry.release(lease)
                    raise
                self._announced_columns.add(lease.key)
        return lease

    def _announce_locked(self, instance: Instance, shard_key: int) -> None:
        if shard_key in self._announced:
            return
        relations = [
            (relation.name, relation.arity)
            for relation in instance.relations()
        ]
        facts = [
            (tuple_id.relation, tuple_id.values)
            for tuple_id in instance.tuple_ids()
        ]
        self._client.cast("instance", shard_key, relations, facts)
        self._announced.add(shard_key)
        self._instance_payloads[shard_key] = (relations, facts)

    def _replay_registrations(self, client: _WorkerClient) -> int:
        """Re-announce every known instance into a fresh worker (the
        supervisor's respawn path); probability columns re-announce
        lazily on next use.  Returns the number replayed."""
        with self._publish_lock:
            self._announced_columns.clear()
            self._announced = set(self._instance_payloads)
            for shard_key, (relations, facts) in sorted(
                self._instance_payloads.items()
            ):
                client.cast("instance", shard_key, relations, facts)
            return len(self._instance_payloads)

    def _announce(self, instance: Instance) -> int:
        shard_key = instance.shard_key()
        with self._publish_lock:
            self._announce_locked(instance, shard_key)
        return shard_key

    # -- route compute hooks -------------------------------------------

    def _execute_extensional(self, query, group: list[_Pending]):
        reps, positions = self._representatives(group)
        leases = [self._lease(pending.request.tid) for pending in reps]
        try:
            rep_probabilities, hit = self._client.call(
                "extensional",
                encode_query(query),
                [lease.key for lease in leases],
            )
        finally:
            for lease in leases:
                self._registry.release(lease)
        return [rep_probabilities[slot] for slot in positions], hit

    def _execute_lifted(self, query, group: list[_Pending]):
        reps, positions = self._representatives(group)
        leases = [self._lease(pending.request.tid) for pending in reps]
        try:
            rep_probabilities, hit = self._client.call(
                "lifted",
                encode_query(query),
                [lease.key for lease in leases],
            )
        finally:
            for lease in leases:
                self._registry.release(lease)
        return [rep_probabilities[slot] for slot in positions], hit

    def _ensure_compiled(self, query, head: _Pending):
        shard_key = self._announce(head.request.tid.instance)
        hit, compile_ms = self._client.call(
            "compile", encode_query(query), shard_key
        )
        return None, hit, compile_ms

    def _execute_intensional(self, query, group: list[_Pending], token):
        reps, positions = self._representatives(group)
        leases = [self._lease(pending.request.tid) for pending in reps]
        try:
            rep_probabilities = self._client.call(
                "intensional",
                encode_query(query),
                [lease.key for lease in leases],
            )
        finally:
            for lease in leases:
                self._registry.release(lease)
        return [rep_probabilities[slot] for slot in positions]

    def _execute_brute(self, query, tid) -> float:
        lease = self._lease(tid)
        try:
            return self._client.call("brute", encode_query(query), lease.key)
        finally:
            self._registry.release(lease)

    def _execute_sampling(self, query, tid, budget, wave_deadline):
        lease = self._lease(tid)
        remaining_ms = (
            wave_deadline.remaining_ms() if wave_deadline is not None else None
        )
        try:
            estimate, engine = self._client.call(
                "sample",
                encode_query(query),
                lease.key,
                encode_budget(budget),
                remaining_ms,
            )
        finally:
            self._registry.release(lease)
        return estimate, engine

    # -- supervision hooks ---------------------------------------------

    def _crash_worker(self) -> None:
        # Injected worker_kill fault: SIGKILL + synchronous respawn, so
        # the transient retry of the raised WorkerCrashError lands on a
        # healed worker — deterministic on both backends.
        self._supervisor.crash_and_respawn()

    def healthy(self) -> bool:
        return (
            super().healthy()
            and self._client.alive()
            and not self._supervisor.gave_up
        )

    def health_check(self, timeout_s: float = 5.0) -> bool:
        """Active liveness probe: ping the worker over the control pipe.
        A timeout kills the worker, which routes into the supervisor's
        normal death-and-respawn path."""
        return self._client.ping(timeout_s)

    # -- observability & lifecycle -------------------------------------

    def stats(self):
        base = super().stats()
        base = replace(
            base, supervisor=self._supervisor.stats(self._client.alive())
        )
        if not self._client.alive():
            return base
        try:
            cache_stats, plan_stats = self._client.call("stats")
        except ServiceStopped:
            return base
        return replace(base, cache=cache_stats, plans=plan_stats)

    def segment_names(self) -> list[str]:
        """The currently published shared-memory segments (tests)."""
        return self._registry.live_names()

    def close(self, wait: bool = True) -> None:
        self._supervisor.shutdown()
        super().close(wait=wait)
        self._client.shutdown(wait=wait)
        if self._owns_registry:
            self._registry.unlink_all()

    def stop(self, wait: bool = True) -> None:
        self._supervisor.shutdown()
        super().stop(wait=wait)
        self._client.shutdown(wait=wait)
        if self._owns_registry:
            self._registry.unlink_all()

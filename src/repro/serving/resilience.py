"""Resilience primitives for the sharded service.

Everything a shard needs to stay answerable under overload and faults:
typed rejection errors (:class:`ServiceStopped`, :class:`ShardOverloaded`,
:class:`CircuitBreakerOpen`), a per-shard :class:`CircuitBreaker`
(closed / open / half-open on consecutive worker failures), a
deterministic jittered-backoff :class:`RetryPolicy` for transient
errors, per-route :class:`LatencyEwma` predictors, and
:func:`degraded_budget` — the bridge from "remaining deadline" to an
:class:`~repro.pqe.approximate.AccuracyBudget` for the sampling
fallback.  The degradation ladder and the policies here are documented
in ``docs/serving.md``.

Determinism is load-bearing: retry jitter draws from the PR-5
:class:`~repro.db.tid.DrawStream` counter addressing (not ``random``),
and degraded budgets quantize their sample caps to powers of two so
that small timing differences between runs collapse onto the same
budget — same seed + same budget ⇒ bit-identical degraded answers,
which is what the ``degraded_identical`` bench flag gates.

:class:`Deadline` / :class:`DeadlineExceeded` live in
:mod:`repro.core.deadline` (so the evaluation engines can check them
without importing the serving layer) and are re-exported here as the
serving-facing names.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.deadline import Deadline, DeadlineExceeded
from repro.db.tid import DrawStream
from repro.pqe.approximate import AccuracyBudget

__all__ = [
    "CircuitBreaker",
    "CircuitBreakerOpen",
    "DEFAULT_SAMPLES_PER_MS",
    "Deadline",
    "DeadlineExceeded",
    "HedgePolicy",
    "LatencyEwma",
    "RetryPolicy",
    "ServiceStopped",
    "ShardOverloaded",
    "SupervisorPolicy",
    "degraded_budget",
]

#: DrawStream lane for retry-backoff jitter.  Lanes 0/1 are the world /
#: clause draw lanes of the samplers (see :mod:`repro.db.tid`); the
#: serving layer keeps far away from them.
RETRY_JITTER_LANE = 7001

#: DrawStream lane for hedge-delay jitter — its own lane so hedging and
#: retries never share a draw schedule.
HEDGE_JITTER_LANE = 7002

#: Conservative prior for the sampling route's throughput, used by
#: :func:`degraded_budget` before the shard has observed any sampling
#: traffic of its own.
DEFAULT_SAMPLES_PER_MS = 100.0

#: Floor on a degraded budget's sample cap: below this the estimate is
#: noise, so rather than serve garbage the shard lets the deadline
#: check fail the request.
MIN_DEGRADED_SAMPLES = 16


class ServiceStopped(RuntimeError):
    """The shard (or service) was stopped; this request will never be
    served.  Subclasses :class:`RuntimeError` so pre-resilience callers
    that caught the executor's bare ``RuntimeError`` keep working."""


class ShardOverloaded(RuntimeError):
    """Admission control shed this request: the shard's queue could not
    absorb it within its deadline (or at all).  Retrying elsewhere or
    later is the caller's decision — the error carries no partial answer."""


class CircuitBreakerOpen(RuntimeError):
    """The shard's circuit breaker is open after consecutive worker
    failures; requests are rejected immediately until the reset timeout
    admits half-open probes."""


class CircuitBreaker:
    """A per-shard breaker over consecutive worker failures.

    States: **closed** (normal; ``failure_threshold`` *consecutive*
    failures trip it), **open** (reject everything for
    ``reset_after_ms``), **half_open** (admit up to ``half_open_probes``
    probe requests; any failure re-trips, ``half_open_probes`` successes
    close).  All transitions are under one lock; ``clock`` is injectable
    so tests drive the reset timeout by hand.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_ms: float = 1000.0,
        half_open_probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        if reset_after_ms <= 0:
            raise ValueError(
                f"reset_after_ms must be positive, got {reset_after_ms}"
            )
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be positive, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after_ms = reset_after_ms
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if (
            self._state == "open"
            and (self._clock() - self._opened_at) * 1e3 >= self.reset_after_ms
        ):
            self._state = "half_open"
            self._probes_in_flight = 0
            self._probe_successes = 0

    def allow(self) -> bool:
        """Whether to admit a request right now (counts half-open probes)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half_open":
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
                return False
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == "half_open":
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._state = "closed"
                    self._consecutive_failures = 0
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == "half_open":
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def trip(self) -> None:
        """Force the breaker open immediately (supervisor escalation).

        Used when an out-of-band signal — a worker death, a supervisor
        giving up on respawns — proves the shard unhealthy without the
        request path having to accumulate ``failure_threshold``
        consecutive failures first.
        """
        with self._lock:
            self._trip()

    def _trip(self) -> None:
        # Caller holds the lock.
        self._state = "open"
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._trips += 1


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic jittered exponential backoff for transient errors.

    ``attempts`` bounds total tries (first attempt included).
    ``delay_ms(token, attempt)`` is a pure function: the jitter draw is
    addressed by ``(token, attempt)`` on a seeded
    :class:`~repro.db.tid.DrawStream` counter, so a replay of the same
    request indices produces the same backoff schedule — retries stay
    inside the deterministic-fault-schedule story of
    :mod:`repro.serving.faults`.
    """

    attempts: int = 2
    base_delay_ms: float = 1.0
    multiplier: float = 2.0
    max_delay_ms: float = 50.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be positive, got {self.attempts}")
        if self.base_delay_ms < 0:
            raise ValueError(
                f"base_delay_ms must be non-negative, got {self.base_delay_ms}"
            )
        if self.multiplier < 1:
            raise ValueError(
                f"multiplier must be at least 1, got {self.multiplier}"
            )
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_ms(self, token: int, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of the
        request identified by ``token`` — deterministic in both."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        backoff = min(
            self.max_delay_ms,
            self.base_delay_ms * self.multiplier ** (attempt - 1),
        )
        if self.jitter == 0 or backoff == 0:
            return backoff
        stream = DrawStream(self.seed, RETRY_JITTER_LANE)
        counter = token * 32 + (attempt & 31)
        draw = stream.below(1 << 20, counter, 1, use_numpy=False)[0]
        # Jitter pulls the delay down into [backoff*(1-jitter), backoff]:
        # full-magnitude retries never exceed the deterministic envelope.
        return backoff * (1.0 - self.jitter * (draw / float(1 << 20)))


class LatencyEwma:
    """A thread-safe exponentially-weighted moving average of per-route
    service latencies (ms) — the shard's one-number prediction of "how
    long would this route take right now" for shed and degradation
    decisions.  ``value()`` is 0.0 until the first observation;
    ``samples`` lets policies refuse to predict from nothing.

    Alongside the mean it tracks an EWMA of squared deviations, so
    :meth:`quantile_ms` can answer "how long would a *slow* request on
    this route take" (mean + z·stddev) — the hedge-delay question: fire
    the backup only once the primary has outlived a high quantile of its
    route's history.
    """

    def __init__(self, alpha: float = 0.2):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._lock = threading.Lock()
        self._value = 0.0
        self._variance = 0.0
        self._samples = 0

    def observe(self, latency_ms: float) -> None:
        with self._lock:
            if self._samples == 0:
                self._value = latency_ms
                self._variance = 0.0
            else:
                deviation = latency_ms - self._value
                self._value += self.alpha * deviation
                self._variance += self.alpha * (
                    deviation * deviation - self._variance
                )
            self._samples += 1

    def value(self) -> float:
        with self._lock:
            return self._value

    def quantile_ms(self, z: float = 2.0) -> float:
        """Mean + ``z`` EWMA standard deviations — an upper-quantile
        latency estimate (0.0 before any observation)."""
        with self._lock:
            if self._samples == 0:
                return 0.0
            return self._value + z * math.sqrt(max(self._variance, 0.0))

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples


@dataclass(frozen=True)
class HedgePolicy:
    """When and how to hedge a replicated request with a backup.

    The service fires at most ``max_backups`` backup requests (0
    disables hedging) after a *deterministic* delay: the primary route's
    :meth:`LatencyEwma.quantile_ms` at ``quantile_z`` deviations, scaled
    by ``delay_factor``, clamped to ``[min_delay_ms, max_delay_ms]``
    (``initial_delay_ms`` stands in before the route has history), then
    jittered downward on a seeded :class:`~repro.db.tid.DrawStream` lane
    exactly like :meth:`RetryPolicy.delay_ms` — a replay of the same
    admission tokens produces the same hedge schedule.
    """

    max_backups: int = 1
    quantile_z: float = 3.0
    delay_factor: float = 1.0
    initial_delay_ms: float = 10.0
    min_delay_ms: float = 1.0
    max_delay_ms: float = 100.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_backups < 0:
            raise ValueError(
                f"max_backups must be non-negative, got {self.max_backups}"
            )
        if self.delay_factor <= 0:
            raise ValueError(
                f"delay_factor must be positive, got {self.delay_factor}"
            )
        if self.min_delay_ms < 0 or self.max_delay_ms < self.min_delay_ms:
            raise ValueError(
                f"need 0 <= min_delay_ms <= max_delay_ms, got "
                f"{self.min_delay_ms}..{self.max_delay_ms}"
            )
        if self.initial_delay_ms < 0:
            raise ValueError(
                f"initial_delay_ms must be non-negative, got "
                f"{self.initial_delay_ms}"
            )
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def enabled(self) -> bool:
        return self.max_backups > 0

    def delay_ms(self, token: int, quantile_ms: float) -> float:
        """Hedge delay for admission ``token`` given the primary route's
        latency quantile — a pure function of both."""
        base = (
            quantile_ms * self.delay_factor
            if quantile_ms > 0
            else self.initial_delay_ms
        )
        base = min(max(base, self.min_delay_ms), self.max_delay_ms)
        if self.jitter == 0 or base == 0:
            return base
        stream = DrawStream(self.seed, HEDGE_JITTER_LANE)
        counter = token * 32
        draw = stream.below(1 << 20, counter, 1, use_numpy=False)[0]
        # Like RetryPolicy: jitter pulls the delay down into
        # [base*(1-jitter), base], never above the envelope.
        return base * (1.0 - self.jitter * (draw / float(1 << 20)))


@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart policy for a supervised worker process.

    On worker death the supervisor resolves in-flight futures typed,
    optionally trips the shard's breaker (``trip_breaker_on_death`` —
    the *failover* signal: while open, replicated instances route to
    replicas), waits a deterministic exponential backoff, then respawns
    and replays instance registrations.  After ``max_restarts``
    respawns the supervisor gives up: the worker stays dead, the shard
    reports unhealthy, and requests fail typed.
    """

    max_restarts: int = 16
    base_delay_ms: float = 5.0
    multiplier: float = 2.0
    max_delay_ms: float = 200.0
    trip_breaker_on_death: bool = True

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be non-negative, got {self.max_restarts}"
            )
        if self.base_delay_ms < 0:
            raise ValueError(
                f"base_delay_ms must be non-negative, got {self.base_delay_ms}"
            )
        if self.multiplier < 1:
            raise ValueError(
                f"multiplier must be at least 1, got {self.multiplier}"
            )
        if self.max_delay_ms < 0:
            raise ValueError(
                f"max_delay_ms must be non-negative, got {self.max_delay_ms}"
            )

    def delay_ms(self, restart: int) -> float:
        """Backoff before restart number ``restart`` (1-based)."""
        if restart < 1:
            raise ValueError(f"restart must be >= 1, got {restart}")
        return min(
            self.max_delay_ms,
            self.base_delay_ms * self.multiplier ** (restart - 1),
        )


def degraded_budget(
    base: AccuracyBudget,
    remaining_ms: float,
    samples_per_ms: float = 0.0,
) -> AccuracyBudget | None:
    """The sampling budget affordable in ``remaining_ms``, or ``None``
    when even a floor-sized estimate will not fit.

    The cap is the observed sampling throughput times the remaining
    deadline (falling back to :data:`DEFAULT_SAMPLES_PER_MS` before any
    observation), clamped to the base budget's cap and **quantized down
    to a power of two**: runs whose clocks differ slightly land on the
    same cap, so the degraded estimate — fully determined by
    ``(seed, budget)`` — is bit-identical across them.  The budget keeps
    the base's seed and epsilon, forces the Wilson interval (never
    degenerate at 0 or n hits, so a degraded answer always carries a
    nonzero ``half_width``), and stays adaptive: if the sampler reaches
    the target half-width early it stops before the cap.
    """
    if remaining_ms <= 0:
        return None
    rate = samples_per_ms if samples_per_ms > 0 else DEFAULT_SAMPLES_PER_MS
    affordable = min(base.max_samples, int(remaining_ms * rate))
    if affordable < MIN_DEGRADED_SAMPLES:
        return None
    cap = 1 << (affordable.bit_length() - 1)
    return AccuracyBudget(
        epsilon=base.epsilon,
        min_samples=min(base.min_samples, cap),
        max_samples=cap,
        seed=base.seed,
        adaptive=True,
        interval="wilson",
        delta=base.delta,
    )

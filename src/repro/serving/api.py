"""The request/response surface of the sharded PQE service.

One request is "evaluate ``Pr(Q_phi)`` on this TID"; the service answers
with a float probability, the engine that produced it, and — for sampled
answers — the error bar the :class:`AccuracyBudget` bought.  Requests and
responses are plain frozen dataclasses so they can cross thread (and
eventually process) boundaries without shared mutable state.

:class:`AccuracyBudget` itself lives in :mod:`repro.pqe.approximate`
(the sampling engine owns its semantics — adaptive waves, interval
choice, the worst-case sample arithmetic) and is re-exported here for
the serving surface.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

from repro.db.tid import TupleIndependentDatabase
from repro.pqe.approximate import AccuracyBudget, Z_95  # noqa: F401
from repro.queries.hqueries import HQuery


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work routed to a shard: a query over a TID, plus the
    accuracy budget to spend if the answer has to be sampled (``None``
    uses the service default).

    ``deadline_ms`` is the caller's latency budget, measured from
    admission: the shard checks it at admission, at dequeue, and between
    sampling waves, and resolves a late request with a typed
    :class:`~repro.serving.resilience.DeadlineExceeded` rather than
    running to completion for a caller that stopped listening.  ``None``
    means "run to completion" (the pre-resilience behavior, and the
    default).  ``priority`` breaks ties under load shedding: when the
    queue must reject someone, the newest *lowest-priority* request goes
    first, so a higher number means "shed me later".

    ``query`` is an :class:`~repro.queries.hqueries.HQuery` or any
    UCQ/CQ the general lifted engine accepts
    (:class:`~repro.queries.ucq.UnionOfCQs`,
    :class:`~repro.queries.cq.ConjunctiveQuery`); non-h queries route
    lifted → brute force → sampling on the shard.
    """

    query: HQuery | object
    tid: TupleIndependentDatabase
    budget: AccuracyBudget | None = None
    deadline_ms: float | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and not (
            isinstance(self.deadline_ms, (int, float))
            and math.isfinite(self.deadline_ms)
            and self.deadline_ms > 0
        ):
            raise ValueError(
                f"deadline_ms must be a positive finite number or None, "
                f"got {self.deadline_ms!r}"
            )
        if not isinstance(self.priority, int):
            raise ValueError(
                f"priority must be an int, got {self.priority!r}"
            )


@dataclass(frozen=True)
class QueryResponse:
    """One answered request.

    ``engine`` is ``"extensional"`` (safe monotone h-query, lifted
    columnar sweep), ``"lifted"`` (safe non-h UCQ/CQ, Dalvi–Suciu plan
    IR), ``"intensional"`` (batched d-D sweep), ``"brute_force"``
    (small hard instance), ``"karp_luby"`` (large hard UCQ) or
    ``"monte_carlo"`` (large hard non-monotone query).  ``batch_size``
    is the size of the microbatch the request was served in (1 when it
    rode alone); ``cache_hit`` whether the shard served cached state —
    a compiled d-D on the intensional route, an extensional plan on the
    extensional route.  ``half_width``/``samples``/``waves`` are zero for
    exact engines; for sampled answers ``samples`` is how many worlds the
    (budget-adaptive) sampler actually drew and ``waves`` how many
    growing waves it took to meet the accuracy target.

    ``degraded`` marks an answer the shard *downgraded* to the sampling
    route because the exact route was predicted to miss the request's
    deadline: the probability is an estimate under a deadline-derived
    :class:`AccuracyBudget`, always with a nonzero ``half_width`` (the
    Wilson interval is never degenerate) — a principled partial answer
    rather than a timeout.
    """

    probability: float
    engine: str
    shard: int
    cache_hit: bool = False
    batch_size: int = 1
    half_width: float = 0.0
    samples: int = 0
    waves: int = 0
    latency_ms: float = 0.0
    degraded: bool = False

    def to_payload(self) -> dict:
        """This response as a JSON-able dict (the gateway's wire form)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "QueryResponse":
        """Rebuild a response serialized by :meth:`to_payload`."""
        return cls(**payload)

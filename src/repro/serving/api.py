"""The request/response surface of the sharded PQE service.

One request is "evaluate ``Pr(Q_phi)`` on this TID"; the service answers
with a float probability, the engine that produced it, and — for sampled
answers — the error bar the :class:`AccuracyBudget` bought.  Requests and
responses are plain frozen dataclasses so they can cross thread (and
eventually process) boundaries without shared mutable state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.db.tid import TupleIndependentDatabase
from repro.queries.hqueries import HQuery

#: Normal-approximation z-score behind every ~95% half-width in
#: :mod:`repro.pqe.approximate`; the budget arithmetic must match it.
Z_95 = 1.96


@dataclass(frozen=True)
class AccuracyBudget:
    """How much accuracy a sampled answer must buy, per request.

    ``epsilon`` is the target ~95% half-width of the estimate.  The
    sample size is the normal-approximation worst case over the
    indicator's variance, ``n = ceil((Z_95 / (2 * epsilon))**2)``,
    clamped to ``[min_samples, max_samples]``.  For
    :func:`~repro.pqe.approximate.monte_carlo_probability` that bounds
    the *absolute* half-width by ``epsilon``; for
    :func:`~repro.pqe.approximate.karp_luby_probability` the half-width
    scales with the union-bound weight ``W``, so ``epsilon`` bounds the
    error *relative to W* — the relative-error regime that makes
    Karp–Luby an FPRAS.

    ``seed`` makes the answer deterministic: a request re-submitted with
    the same budget draws the same sample path, so shard workers (and
    retries) can rely on reproducible estimates.
    """

    epsilon: float = 0.05
    min_samples: int = 100
    max_samples: int = 50_000
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be positive, got {self.min_samples}"
            )
        if self.max_samples < self.min_samples:
            raise ValueError(
                f"max_samples {self.max_samples} below min_samples "
                f"{self.min_samples}"
            )

    def samples(self) -> int:
        """The sample size this budget purchases (see class docstring)."""
        worst_case = math.ceil((Z_95 / (2 * self.epsilon)) ** 2)
        return max(self.min_samples, min(self.max_samples, worst_case))


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work routed to a shard: a query over a TID, plus the
    accuracy budget to spend if the answer has to be sampled (``None``
    uses the service default)."""

    query: HQuery
    tid: TupleIndependentDatabase
    budget: AccuracyBudget | None = None


@dataclass(frozen=True)
class QueryResponse:
    """One answered request.

    ``engine`` is ``"extensional"`` (safe monotone query, lifted columnar
    sweep), ``"intensional"`` (batched d-D sweep), ``"brute_force"``
    (small hard instance), ``"karp_luby"`` (large hard UCQ) or
    ``"monte_carlo"`` (large hard non-monotone query).  ``batch_size``
    is the size of the microbatch the request was served in (1 when it
    rode alone); ``cache_hit`` whether the shard served cached state —
    a compiled d-D on the intensional route, an extensional plan on the
    extensional route.  ``half_width``/``samples`` are zero for exact
    engines.
    """

    probability: float
    engine: str
    shard: int
    cache_hit: bool = False
    batch_size: int = 1
    half_width: float = 0.0
    samples: int = 0
    latency_ms: float = 0.0

"""One shard of the sharded PQE service.

A shard owns everything a request needs after routing: its *own*
:class:`~repro.pqe.engine.CompilationCache` (so cache churn is isolated
per shard and two shards never serve each other's circuits) and its own
:class:`~repro.pqe.extensional.ExtensionalPlanCache` (safe monotone
queries are served by lifted plans, never by circuits), a small
thread-pool of workers, a pending queue that microbatches same-work
requests, and its stats.  Instance-derived state (variable orders,
tabular side machines, shared OBDD managers) lives on the
:class:`~repro.db.relation.Instance` objects themselves via
``cached_derivation``; since an instance is routed to exactly one shard,
those arenas are shard-local too.

Microbatching: every ``submit`` appends to the pending queue and
schedules a drain on the shard's executor.  A drain takes the queue
head and *all* pending requests sharing its ``(query, instance
fingerprint)`` work key, resolves each request's probability map to a
tape slot vector, and serves the whole group in one
:meth:`~repro.circuits.evaluator.EvaluationTape.evaluate_vectors` sweep
of the compiled tape — one cache probe and one vectorized pass for the
group, however it interleaved with other traffic.  Because numpy's
elementwise kernels and the generated float function are per-element
IEEE operations, batch composition never changes any individual float:
a microbatched answer is bit-for-float identical to a single-threaded
:func:`~repro.pqe.engine.evaluate_batch`.  Safe monotone groups take the
extensional sweep instead (one shared plan, one columnar sweep per
request's probability map) with the same grouping and the same
bit-for-float guarantee.  Hard large groups take the sampling analogue:
one vectorized budget-adaptive sweep per distinct ``(budget,
probability map)`` in the group, sharing the microbatch's cached
lineage structure — deterministic per budget seed, so sharing is
invisible in the responses.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.pqe.approximate import sampling_plan
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.dichotomy import classify
from repro.pqe.engine import (
    BRUTE_FORCE_LIMIT,
    COMPILATION_CACHE_LIMIT,
    CompilationCache,
)
from repro.pqe.extensional import (
    ExtensionalPlanCache,
    probability_batch as extensional_probability_batch,
)
from repro.serving.api import AccuracyBudget, QueryRequest, QueryResponse
from repro.serving.stats import LatencyWindow, SamplingStats, ShardStats


@dataclass
class _Pending:
    """A queued request: the work key groups microbatchable neighbors."""

    request: QueryRequest
    future: Future
    enqueued: float
    key: tuple = field(init=False)

    def __post_init__(self) -> None:
        self.key = (
            self.request.query,
            self.request.tid.instance.content_fingerprint(),
        )


class Shard:
    """One shard: compilation cache, workers, microbatch queue, stats."""

    def __init__(
        self,
        shard_id: int,
        *,
        workers: int = 2,
        cache_limit: int = COMPILATION_CACHE_LIMIT,
        default_budget: AccuracyBudget | None = None,
        brute_force_limit: int = BRUTE_FORCE_LIMIT,
        latency_window: int = 4096,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.shard_id = shard_id
        self.cache = CompilationCache(cache_limit)
        self.plan_cache = ExtensionalPlanCache()
        self.default_budget = (
            default_budget if default_budget is not None else AccuracyBudget()
        )
        self.brute_force_limit = brute_force_limit
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"pqe-shard-{shard_id}"
        )
        self._lock = threading.Lock()
        self._pending: deque[_Pending] = deque()
        self._latencies = LatencyWindow(latency_window)
        self._instances: set[tuple] = set()
        self._requests = 0
        self._batches = 0
        self._max_batch_size = 0
        self._microbatched = 0
        self._compile_ms = 0.0
        self._engines: Counter[str] = Counter()
        self._sampled_requests = 0
        self._sampling_sweeps = 0
        self._sampling_waves = 0
        self._samples_drawn = 0
        self._sampling_max_half_width = 0.0

    # ------------------------------------------------------------------
    # Front-end
    # ------------------------------------------------------------------

    def register(self, fingerprint: tuple) -> None:
        """Record an instance fingerprint as resident on this shard."""
        with self._lock:
            self._instances.add(fingerprint)

    def submit(self, request: QueryRequest) -> Future:
        """Enqueue one request; the returned future resolves to a
        :class:`~repro.serving.api.QueryResponse` (or raises the engine's
        error, e.g. a hard non-UCQ query too large even to sample)."""
        pending = _Pending(request, Future(), time.perf_counter())
        with self._lock:
            self._pending.append(pending)
            self._instances.add(pending.key[1])
        try:
            self._executor.submit(self._drain)
        except RuntimeError:
            # Closed executor: take the request back out so the queue
            # depth does not report a phantom entry forever.  (If a
            # still-running drain already claimed it, it will be served
            # despite the error.)
            with self._lock:
                try:
                    self._pending.remove(pending)
                except ValueError:
                    pass
            raise
        return pending.future

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down (idempotent); pending drains finish
        when ``wait`` is true."""
        self._executor.shutdown(wait=wait)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _drain(self) -> None:
        """Serve one microbatch: the queue head plus every pending
        request sharing its work key.  Each ``submit`` schedules one
        drain, and each drain serves at least the head, so every request
        is served by *some* drain even when groups collapse."""
        with self._lock:
            if not self._pending:
                return
            head = self._pending.popleft()
            group = [head]
            kept: deque[_Pending] = deque()
            while self._pending:
                other = self._pending.popleft()
                if other.key == head.key:
                    group.append(other)
                else:
                    kept.append(other)
            self._pending = kept
        # Claim every request before computing: a bare Future stays
        # cancellable until claimed, and resolving a cancelled future
        # raises InvalidStateError — which would poison the rest of the
        # group.  A claimed (RUNNING) future can no longer be cancelled.
        group = [
            pending
            for pending in group
            if pending.future.set_running_or_notify_cancel()
        ]
        if not group:
            return
        try:
            self._process(group)
        except BaseException as error:  # noqa: BLE001 - futures carry it
            for pending in group:
                if not pending.future.done():
                    pending.future.set_exception(error)

    def _process(self, group: list[_Pending]) -> None:
        query = group[0].request.query
        classification = classify(query)
        size = len(group)
        # Counters first: a client unblocked by its future may read
        # stats() immediately and must already see itself counted.
        with self._lock:
            self._requests += size
            self._batches += 1
            self._max_batch_size = max(self._max_batch_size, size)
            if size > 1:
                self._microbatched += size
        if classification.extensional_safe:
            # Safe monotone queries: lifted inference over the columnar
            # view — no lineage, no compilation.  The plan is per-query
            # state from this shard's plan cache; the whole microbatch
            # shares it, and each request's probability map is swept
            # independently, so the answers are bit-for-float identical
            # to direct per-request evaluation.
            plan, hit = self.plan_cache.get_or_build(query)
            probabilities = extensional_probability_batch(
                query,
                [pending.request.tid for pending in group],
                plan=plan,
            )
            for pending, probability in zip(group, probabilities):
                self._finish(
                    pending,
                    probability,
                    "extensional",
                    cache_hit=hit,
                    batch_size=size,
                )
        elif classification.dd_ptime:
            compiled, hit = self.cache.get_or_compile(
                query, group[0].request.tid.instance, group[0].key[1]
            )
            if not hit:
                with self._lock:
                    self._compile_ms += compiled.compile_ms
            tape = compiled.tape
            probabilities = tape.evaluate_vectors(
                [
                    tape.probability_vector(
                        pending.request.tid.probability_map()
                    )
                    for pending in group
                ]
            )
            for pending, probability in zip(group, probabilities):
                self._finish(
                    pending,
                    probability,
                    "intensional",
                    cache_hit=hit,
                    batch_size=size,
                )
        else:
            brute = [
                pending
                for pending in group
                if len(pending.request.tid) <= self.brute_force_limit
            ]
            sampled = [
                pending
                for pending in group
                if len(pending.request.tid) > self.brute_force_limit
            ]
            for pending in brute:
                self._finish(
                    pending,
                    float(
                        probability_by_world_enumeration(
                            query, pending.request.tid
                        )
                    ),
                    "brute_force",
                    batch_size=size,
                )
            if sampled:
                self._sample_group(query, sampled, batch_size=size)

    def _sample_group(
        self, query, group: list[_Pending], batch_size: int
    ) -> None:
        """The large-hard-query route: one vectorized budget-adaptive
        sampling sweep per distinct ``(budget, probability map)`` in the
        microbatch.

        All requests in the group already share the ``(query, instance
        fingerprint)`` work key, so the lineage structure (clauses,
        incidence matrices, indicator tape) is built once per instance
        content; requests whose budgets *and* probability fingerprints
        also agree would draw byte-identical sample paths, so they share
        one sweep outright — the sampling analogue of the microbatched
        tape sweep.  Estimates are deterministic per budget seed, so the
        sharing is invisible in the responses.
        """
        subgroups: OrderedDict[tuple, list[_Pending]] = OrderedDict()
        for pending in group:
            budget = pending.request.budget or self.default_budget
            key = (budget, pending.request.tid.probability_fingerprint())
            subgroups.setdefault(key, []).append(pending)
        for (budget, _), pendings in subgroups.items():
            plan = sampling_plan(query, pendings[0].request.tid)
            estimate = plan.run(budget)
            with self._lock:
                self._sampled_requests += len(pendings)
                self._sampling_sweeps += 1
                self._sampling_waves += estimate.waves
                self._samples_drawn += estimate.samples
                self._sampling_max_half_width = max(
                    self._sampling_max_half_width, estimate.half_width
                )
            for pending in pendings:
                # The unbiased Karp-Luby estimate W * fraction can land
                # outside [0, 1] when the union-bound weight W exceeds 1;
                # a *served* probability is clamped (never further from
                # the truth, which is a probability).  The half-width is
                # reported unclamped.
                self._finish(
                    pending,
                    min(1.0, max(0.0, estimate.value)),
                    plan.engine,
                    batch_size=batch_size,
                    half_width=estimate.half_width,
                    samples=estimate.samples,
                    waves=estimate.waves,
                )

    def _finish(
        self,
        pending: _Pending,
        probability: float,
        engine: str,
        *,
        cache_hit: bool = False,
        batch_size: int = 1,
        half_width: float = 0.0,
        samples: int = 0,
        waves: int = 0,
    ) -> None:
        latency_ms = (time.perf_counter() - pending.enqueued) * 1e3
        self._latencies.record(latency_ms)
        with self._lock:
            self._engines[engine] += 1
        pending.future.set_result(
            QueryResponse(
                probability,
                engine,
                self.shard_id,
                cache_hit=cache_hit,
                batch_size=batch_size,
                half_width=half_width,
                samples=samples,
                waves=waves,
                latency_ms=latency_ms,
            )
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> ShardStats:
        cache = self.cache.stats()
        plans = self.plan_cache.stats()
        p50 = self._latencies.percentile(0.50)
        p95 = self._latencies.percentile(0.95)
        with self._lock:
            return ShardStats(
                shard=self.shard_id,
                instances=len(self._instances),
                requests=self._requests,
                batches=self._batches,
                max_batch_size=self._max_batch_size,
                microbatched_requests=self._microbatched,
                queue_depth=len(self._pending),
                engines=dict(self._engines),
                cache=cache,
                plans=plans,
                sampling=SamplingStats(
                    requests=self._sampled_requests,
                    sweeps=self._sampling_sweeps,
                    waves=self._sampling_waves,
                    samples=self._samples_drawn,
                    max_half_width=self._sampling_max_half_width,
                ),
                compile_ms=self._compile_ms,
                p50_ms=p50,
                p95_ms=p95,
            )

    def latency_snapshot(self) -> list[float]:
        """The raw latency window (for service-wide percentiles)."""
        return self._latencies.snapshot()

"""One shard of the sharded PQE service.

A shard owns everything a request needs after routing: its *own*
:class:`~repro.pqe.engine.CompilationCache` (so cache churn is isolated
per shard and two shards never serve each other's circuits) and its own
:class:`~repro.pqe.extensional.ExtensionalPlanCache` (safe monotone
queries are served by lifted plans, never by circuits), a small
thread-pool of workers, a pending queue that microbatches same-work
requests, and its stats.  Instance-derived state (variable orders,
tabular side machines, shared OBDD managers) lives on the
:class:`~repro.db.relation.Instance` objects themselves via
``cached_derivation``; since an instance is routed to exactly one shard,
those arenas are shard-local too.

Microbatching: every ``submit`` appends to the pending queue and
schedules a drain on the shard's executor.  A drain takes the queue
head and *all* pending requests sharing its ``(query, instance
fingerprint)`` work key, resolves each request's probability map to a
tape slot vector, and serves the whole group in one
:meth:`~repro.circuits.evaluator.EvaluationTape.evaluate_vectors` sweep
of the compiled tape — one cache probe and one vectorized pass for the
group, however it interleaved with other traffic.  Because numpy's
elementwise kernels and the generated float function are per-element
IEEE operations, batch composition never changes any individual float:
a microbatched answer is bit-for-float identical to a single-threaded
:func:`~repro.pqe.engine.evaluate_batch`.  Safe monotone groups take the
extensional sweep instead (one shared plan, one columnar sweep per
request's probability map) with the same grouping and the same
bit-for-float guarantee.  Hard large groups take the sampling analogue:
one vectorized budget-adaptive sweep per distinct ``(budget,
probability map)`` in the group, sharing the microbatch's cached
lineage structure — deterministic per budget seed, so sharing is
invisible in the responses.

Fused groups additionally dedup *identical work*: members of one group
share instance content by construction, so members whose probability
maps also agree (equal
:meth:`~repro.db.tid.TupleIndependentDatabase.probability_digest`) are
served by **one** evaluation whose float is fanned out to every twin —
a hot same-instance wave costs one sweep, not one per request.  Because
the shared float is exactly the float each twin would have computed
alone, fan-out is invisible in the responses.

Resilience: requests may carry a deadline and a priority.  Admission
control bounds the queue and sheds the newest lowest-priority request
when the queue (or the per-shard circuit breaker) cannot absorb more;
deadlines are checked cooperatively at admission, at dequeue, between
compilation and the sweep, and between sampling waves; an exact route
predicted (per-route latency EWMAs) to miss a request's deadline is
downgraded to the sampling route under a deadline-derived budget
(``degraded=True`` responses, nonzero ``half_width``).  A group whose
sweep raises is retried member-by-member, so one poisoned request
fails alone; transient faults additionally get a deterministic
jittered-backoff retry.  Every rejection is a *typed* error set on the
future — a submitted request always resolves.  The full degradation
ladder and the policies live in ``docs/serving.md``.

Backends: this class is the **policy front end** shared by both serving
backends.  Everything above — queueing, microbatch fusion, admission,
deadlines, degradation, retries, breaker, fault injection, stats — runs
here, in the submitting process, for *both* backends; only the route
*computations* are behind the four ``_execute_*`` hooks.  The thread
backend (this class) runs them in-process on the shard's worker pool;
the process backend (:class:`~repro.serving.worker.ProcessShard`)
overrides them with RPCs to a dedicated worker process.  Identical
policy code plus content-determined compute is what makes the two
backends bit-for-float identical and fault-replay equivalent.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.deadline import Deadline, DeadlineExceeded
from repro.pqe.approximate import sampling_plan
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.dichotomy import classify_query
from repro.pqe.engine import (
    BRUTE_FORCE_LIMIT,
    COMPILATION_CACHE_LIMIT,
    CompilationCache,
)
from repro.pqe.extensional import (
    ExtensionalPlanCache,
    probability_batch as extensional_probability_batch,
)
from repro.pqe.lift import evaluate_plan_batch
from repro.queries.hqueries import HQuery
from repro.serving.api import AccuracyBudget, QueryRequest, QueryResponse
from repro.serving.faults import (
    FaultInjector,
    TransientFaultError,
    WorkerCrashError,
)
from repro.serving.resilience import (
    CircuitBreaker,
    CircuitBreakerOpen,
    LatencyEwma,
    RetryPolicy,
    ServiceStopped,
    ShardOverloaded,
    degraded_budget,
)
from repro.serving.stats import (
    LatencyWindow,
    ResilienceStats,
    SamplingStats,
    ShardStats,
)

#: The route labels the shed/degradation policies keep EWMAs for.
_ROUTES = ("extensional", "lifted", "intensional", "brute_force", "sampling")


@dataclass
class _Pending:
    """A queued request: the work key groups microbatchable neighbors.

    ``deadline`` is materialized once at admission; ``attempt`` counts
    serve attempts (for retry bounding and fault re-rolls); ``counted``
    keeps retries from double-counting into the request counters;
    ``budget_override`` carries the deadline-derived budget of a
    degraded request into the sampling route.
    """

    request: QueryRequest
    future: Future
    enqueued: float
    deadline: Deadline | None = None
    index: int = 0
    attempt: int = 0
    counted: bool = False
    budget_override: AccuracyBudget | None = None
    key: tuple = field(init=False)

    def __post_init__(self) -> None:
        self.key = (
            self.request.query,
            self.request.tid.instance.content_fingerprint(),
        )


class Shard:
    """One shard: compilation cache, workers, microbatch queue, stats."""

    def __init__(
        self,
        shard_id: int,
        *,
        workers: int = 2,
        cache_limit: int = COMPILATION_CACHE_LIMIT,
        default_budget: AccuracyBudget | None = None,
        brute_force_limit: int = BRUTE_FORCE_LIMIT,
        latency_window: int = 4096,
        max_queue_depth: int = 4096,
        breaker: CircuitBreaker | None = None,
        retry: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        degrade_to_sampling: bool = True,
        ewma_alpha: float = 0.2,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be positive, got {max_queue_depth}"
            )
        self.shard_id = shard_id
        self.cache = CompilationCache(cache_limit)
        self.plan_cache = ExtensionalPlanCache()
        self.default_budget = (
            default_budget if default_budget is not None else AccuracyBudget()
        )
        self.brute_force_limit = brute_force_limit
        self.max_queue_depth = max_queue_depth
        self.degrade_to_sampling = degrade_to_sampling
        self._breaker = breaker
        self._retry = retry if retry is not None else RetryPolicy()
        self._fault_injector = fault_injector
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"pqe-shard-{shard_id}"
        )
        self._lock = threading.Lock()
        self._pending: deque[_Pending] = deque()
        self._latencies = LatencyWindow(latency_window)
        self._instances: set[tuple] = set()
        self._stopped = False
        self._admitted = 0
        self._requests = 0
        self._batches = 0
        self._max_batch_size = 0
        self._microbatched = 0
        self._compile_ms = 0.0
        self._engines: Counter[str] = Counter()
        self._sampled_requests = 0
        self._sampling_sweeps = 0
        self._sampling_waves = 0
        self._samples_drawn = 0
        self._sampling_max_half_width = 0.0
        self._route_ewma = {
            route: LatencyEwma(ewma_alpha) for route in _ROUTES
        }
        self._service_ewma = LatencyEwma(ewma_alpha)
        self._sampling_rate = LatencyEwma(ewma_alpha)  # samples per ms
        self._shed = 0
        self._deadline_exceeded = 0
        self._degraded = 0
        self._retries = 0
        self._failures = 0
        self._breaker_rejected = 0
        self._injected_errors = 0
        self._injected_latency = 0
        self._injected_kills = 0
        self._injected_stragglers = 0

    # ------------------------------------------------------------------
    # Front-end
    # ------------------------------------------------------------------

    def register(self, fingerprint: tuple) -> None:
        """Record an instance fingerprint as resident on this shard."""
        with self._lock:
            self._instances.add(fingerprint)

    def unregister(self, fingerprint: tuple) -> None:
        """Forget a resident instance fingerprint (idempotent).  Only
        the catalog entry is dropped — cached circuits and plans age out
        of their LRUs, and on the process backend the content-addressed
        segment registry reclaims the instance's shared-memory columns
        once unpinned (the same stale-on-new-digest path probability
        updates already take)."""
        with self._lock:
            self._instances.discard(fingerprint)

    def submit(
        self, request: QueryRequest, deadline: Deadline | None = None
    ) -> Future:
        """Enqueue one request; the returned future resolves to a
        :class:`~repro.serving.api.QueryResponse` or raises a typed
        error (the engine's own, or
        :class:`~repro.serving.resilience.ShardOverloaded` /
        :class:`~repro.serving.resilience.CircuitBreakerOpen` /
        :class:`~repro.core.deadline.DeadlineExceeded` from the
        resilience layer).  Only submitting against a stopped shard
        raises *here* — an admitted request's outcome always travels
        through its future.

        ``deadline`` lets a caller hand in a pre-built
        :class:`~repro.core.deadline.Deadline` instead of the request's
        relative ``deadline_ms`` — the hedging layer keeps the handle so
        it can :meth:`~repro.core.deadline.Deadline.expire` the losing
        attempt cooperatively.
        """
        if deadline is None:
            deadline = (
                Deadline(request.deadline_ms)
                if request.deadline_ms is not None
                else None
            )
        pending = _Pending(
            request, Future(), time.perf_counter(), deadline=deadline
        )
        rejection: BaseException | None = None
        victim: _Pending | None = None
        with self._lock:
            if self._stopped:
                raise ServiceStopped(
                    f"shard {self.shard_id} is stopped"
                )
            pending.index = self._admitted
            self._admitted += 1
            self._instances.add(pending.key[1])
            if self._breaker is not None and not self._breaker.allow():
                self._breaker_rejected += 1
                rejection = CircuitBreakerOpen(
                    f"shard {self.shard_id} circuit breaker is "
                    f"{self._breaker.state}"
                )
            else:
                rejection, victim = self._admit(pending)
        if victim is not None:
            self._shed_reject(
                victim,
                f"shard {self.shard_id} shed this request for a "
                f"higher-priority arrival",
            )
        if rejection is not None:
            self._reject(pending, rejection)
            return pending.future
        if victim is None:
            # A victim swap reuses the drain its victim already
            # scheduled; only a plain append needs a new one.
            try:
                self._executor.submit(self._drain)
            except RuntimeError:
                # Closed executor: take the request back out so the queue
                # depth does not report a phantom entry forever.  (If a
                # still-running drain already claimed it, it will be
                # served despite the error.)
                with self._lock:
                    try:
                        self._pending.remove(pending)
                    except ValueError:
                        pass
                raise
        return pending.future

    def _admit(
        self, pending: _Pending
    ) -> tuple[BaseException | None, _Pending | None]:
        """Admission control (caller holds the lock): append the request,
        or shed — the newest strictly-lower-priority queued request if
        one exists (the incoming request takes its place), otherwise the
        incoming request itself.  Sheds on a full queue, and predictively
        when the queued depth times the observed per-request service
        latency already exceeds the incoming deadline."""
        phantom = (
            self._fault_injector.phantom_depth(self.shard_id, pending.index)
            if self._fault_injector is not None
            else 0
        )
        depth = len(self._pending) + phantom
        shed = depth >= self.max_queue_depth
        if (
            not shed
            and pending.deadline is not None
            and self._service_ewma.samples > 0
            and (depth + 1) * self._service_ewma.value()
            > pending.deadline.remaining_ms()
        ):
            shed = True
        if not shed:
            self._pending.append(pending)
            return None, None
        self._shed += 1
        for queued in reversed(self._pending):
            if queued.request.priority < pending.request.priority:
                self._pending.remove(queued)
                self._pending.append(pending)
                return None, queued
        return (
            ShardOverloaded(
                f"shard {self.shard_id} shed this request (queue depth "
                f"{depth} >= {self.max_queue_depth} or deadline "
                f"unmeetable at the observed service rate)"
            ),
            None,
        )

    def _reject(self, pending: _Pending, error: BaseException) -> None:
        """Resolve a never-served request with a typed error.  The future
        is claimed first so a racing ``cancel()`` cannot leave it in an
        unresolvable state; if the caller cancelled first, there is
        nobody to notify and the rejection is dropped."""
        if pending.future.set_running_or_notify_cancel():
            pending.future.set_exception(error)

    def _shed_reject(self, pending: _Pending, message: str) -> None:
        self._reject(pending, ShardOverloaded(message))

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def healthy(self) -> bool:
        """Whether this shard can be expected to serve right now: not
        stopped and breaker not open.  The process backend additionally
        requires a live (or still-supervisable) worker.  Replica routing
        and hedging consult this to skip dark shards."""
        with self._lock:
            if self._stopped:
                return False
        if self._breaker is not None and self._breaker.state == "open":
            return False
        return True

    def accepting(self) -> bool:
        """Healthy *and* with admission headroom — a shard worth
        hedging onto (a backup fired at a full queue would just be
        shed)."""
        return self.healthy() and self.queue_depth() < self.max_queue_depth

    def route_for(self, request: QueryRequest) -> str:
        """The route label this request would take (mirrors
        :meth:`_process`'s dispatch) — what the hedge-delay policy keys
        its latency quantile on."""
        classification = classify_query(request.query)
        if classification.extensional_safe:
            return (
                "extensional"
                if isinstance(request.query, HQuery)
                else "lifted"
            )
        if classification.h_query and classification.dd_ptime:
            return "intensional"
        if len(request.tid) <= self.brute_force_limit:
            return "brute_force"
        return "sampling"

    def route_quantile_ms(self, route: str, z: float = 2.0) -> float:
        """An upper-quantile latency estimate for ``route`` (0.0 before
        any observation) — the hedge-delay input."""
        if route not in self._route_ewma:
            raise ValueError(
                f"unknown route {route!r}; expected one of {_ROUTES}"
            )
        return self._route_ewma[route].quantile_ms(z)

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down gracefully (idempotent): pending
        drains finish when ``wait`` is true.  For a fast shutdown that
        *resolves* the queue instead of serving it, use :meth:`stop`."""
        self._executor.shutdown(wait=wait)

    def stop(self, wait: bool = True) -> None:
        """Stop serving now (idempotent): still-queued requests are
        resolved with a typed
        :class:`~repro.serving.resilience.ServiceStopped` — never
        abandoned, so no caller blocks forever on a stopped shard — and
        subsequent :meth:`submit` calls raise it directly.  In-flight
        microbatches finish (``wait=True`` joins them)."""
        with self._lock:
            self._stopped = True
            abandoned = list(self._pending)
            self._pending.clear()
        for pending in abandoned:
            self._reject(
                pending, ServiceStopped(f"shard {self.shard_id} stopped")
            )
        self._executor.shutdown(wait=wait)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _drain(self) -> None:
        """Serve one microbatch: the queue head plus every pending
        request sharing its work key.  Each ``submit`` schedules one
        drain, and each drain serves at least the head, so every request
        is served by *some* drain even when groups collapse."""
        with self._lock:
            if not self._pending:
                return
            head = self._pending.popleft()
            group = [head]
            kept: deque[_Pending] = deque()
            while self._pending:
                other = self._pending.popleft()
                if other.key == head.key:
                    group.append(other)
                else:
                    kept.append(other)
            self._pending = kept
        # Claim every request before computing: a bare Future stays
        # cancellable until claimed, and resolving a cancelled future
        # raises InvalidStateError — which would poison the rest of the
        # group.  A claimed (RUNNING) future can no longer be cancelled.
        group = [
            pending
            for pending in group
            if pending.future.set_running_or_notify_cancel()
        ]
        if group:
            self._serve(group)

    def _serve(self, group: list[_Pending]) -> None:
        """Serve a claimed group, isolating failures.

        A raising sweep poisons nobody: the unresolved survivors are
        retried member-by-member (each as its own group), so a request
        that fails deterministically fails *alone* with its own error
        while its microbatch peers still get answers.  A lone transient
        failure goes through the jittered-backoff retry policy before
        being failed typed; terminal failures feed the circuit breaker.
        """
        try:
            self._process(group)
        except DeadlineExceeded as error:
            for pending in group:
                if not pending.future.done():
                    self._resolve_deadline(pending, error)
        except BaseException as error:  # noqa: BLE001 - futures carry it
            survivors = [p for p in group if not p.future.done()]
            if len(survivors) > 1:
                with self._lock:
                    self._retries += len(survivors)
                for pending in survivors:
                    pending.attempt += 1
                    self._serve([pending])
            elif survivors:
                self._fail_or_retry(survivors[0], error)

    def _fail_or_retry(
        self, pending: _Pending, error: BaseException
    ) -> None:
        """One member failed on its own: back off and retry a transient
        fault while attempts remain, else fail it typed and tell the
        breaker."""
        if (
            isinstance(error, TransientFaultError)
            and pending.attempt + 1 < self._retry.attempts
        ):
            with self._lock:
                self._retries += 1
            delay_ms = self._retry.delay_ms(
                pending.index, pending.attempt + 1
            )
            if delay_ms > 0:
                time.sleep(delay_ms / 1e3)
            pending.attempt += 1
            self._serve([pending])
            return
        with self._lock:
            self._failures += 1
        if self._breaker is not None:
            self._breaker.record_failure()
        pending.future.set_exception(error)

    def _resolve_deadline(
        self, pending: _Pending, error: DeadlineExceeded | None = None
    ) -> None:
        """Resolve one request as late (typed), counting it.  Deadline
        misses are the *caller's* budget running out, not shard
        ill-health, so they never feed the breaker."""
        with self._lock:
            self._deadline_exceeded += 1
        if error is None:
            error = DeadlineExceeded(
                f"deadline exceeded before shard {self.shard_id} could "
                f"serve the request"
            )
        if pending.future.done():  # pragma: no cover - defensive
            return
        pending.future.set_exception(error)

    def _drop_expired(self, group: list[_Pending]) -> list[_Pending]:
        """Split out members whose deadline already passed, resolving
        each with :class:`DeadlineExceeded`; returns the still-live
        rest.  Run at dequeue and again after compilation — the two
        points where meaningful time may have passed since admission."""
        ready = []
        for pending in group:
            if pending.deadline is not None and pending.deadline.expired():
                self._resolve_deadline(pending)
            else:
                ready.append(pending)
        return ready

    def _inject(self, group: list[_Pending]) -> None:
        """Apply the optional fault injector to this serve attempt:
        crash the worker if any member is scheduled to kill it (raising
        :class:`WorkerCrashError` — transient, so the retry lands on the
        respawned worker), sleep the worst injected latency / straggler
        delay of the group, then raise :class:`TransientFaultError` if
        any member is scheduled to fail this attempt (the group-split
        retry in :meth:`_serve` then isolates the doomed member)."""
        injector = self._fault_injector
        killers = [
            pending
            for pending in group
            if injector.should_kill(
                self.shard_id, pending.index, pending.attempt
            )
        ]
        if killers:
            with self._lock:
                self._injected_kills += len(killers)
            # The crash-and-respawn is synchronous: by the time the
            # transient retry re-serves this group, a fresh worker with
            # replayed registrations is in place — so the outcome is a
            # pure function of the seeded schedule on both backends.
            self._crash_worker()
            raise WorkerCrashError(
                f"injected worker crash on shard {self.shard_id} "
                f"(request indices "
                f"{[pending.index for pending in killers]}, attempt "
                f"{killers[0].attempt})"
            )
        delay_ms = 0.0
        straggler_ms = 0.0
        for pending in group:
            delay_ms = max(
                delay_ms,
                injector.latency_ms_for(
                    self.shard_id, pending.index, pending.attempt
                ),
            )
            straggler_ms = max(
                straggler_ms,
                injector.straggler_ms_for(
                    self.shard_id, pending.index, pending.attempt
                ),
            )
        if straggler_ms > 0:
            with self._lock:
                self._injected_stragglers += 1
        if delay_ms > 0:
            with self._lock:
                self._injected_latency += 1
        total_delay = max(delay_ms, straggler_ms)
        if total_delay > 0:
            time.sleep(total_delay / 1e3)
        doomed = [
            pending
            for pending in group
            if injector.should_fail(
                self.shard_id, pending.index, pending.attempt
            )
        ]
        if doomed:
            with self._lock:
                self._injected_errors += len(doomed)
            raise TransientFaultError(
                f"injected worker fault on shard {self.shard_id} "
                f"(request indices "
                f"{[pending.index for pending in doomed]}, attempt "
                f"{doomed[0].attempt})"
            )

    def _crash_worker(self) -> None:
        """Crash the compute backend under an injected ``worker_kill``
        fault.  The thread backend has no process to kill — the raised
        :class:`WorkerCrashError` *is* the whole crash — so this base
        hook is a no-op; :class:`~repro.serving.worker.ProcessShard`
        overrides it to SIGKILL its worker and synchronously respawn it
        through the supervisor, keeping both backends' observable
        behavior identical."""

    # ------------------------------------------------------------------
    # Route compute — the backend boundary
    # ------------------------------------------------------------------
    #
    # Everything below `_process` is policy; the four `_execute_*` hooks
    # (plus `_ensure_compiled`) are the only places a probability is
    # actually computed.  The process backend overrides exactly these
    # with RPCs into its worker process; the policy code above and in
    # `_process` never notices which backend it is running on.

    @staticmethod
    def _representatives(
        group: list[_Pending],
    ) -> tuple[list[_Pending], list[int]]:
        """Collapse a fused group onto one representative per distinct
        probability map (equal ``probability_digest``), returning the
        representatives in first-occurrence order plus each member's
        representative slot.  Members of a group share instance content
        by construction, so an equal digest means an equal map — the
        representative's float *is* the twin's float."""
        reps: list[_Pending] = []
        slots: dict[int, int] = {}
        positions: list[int] = []
        for pending in group:
            digest = pending.request.tid.probability_digest()
            slot = slots.get(digest)
            if slot is None:
                slot = len(reps)
                slots[digest] = slot
                reps.append(pending)
            positions.append(slot)
        return reps, positions

    def _execute_extensional(
        self, query, group: list[_Pending]
    ) -> tuple[list[float], bool]:
        """Serve an extensional group: one lifted columnar sweep per
        distinct probability map, fanned out.  Returns the per-member
        floats (group order) and whether the plan was cached."""
        plan, hit = self.plan_cache.get_or_build(query)
        reps, positions = self._representatives(group)
        rep_probabilities = extensional_probability_batch(
            query,
            [pending.request.tid for pending in reps],
            plan=plan,
        )
        return [rep_probabilities[slot] for slot in positions], hit

    def _execute_lifted(
        self, query, group: list[_Pending]
    ) -> tuple[list[float], bool]:
        """Serve a general lifted group (non-h safe UCQ/CQ): one IR plan
        from this shard's plan cache, one evaluator sweep per distinct
        probability map, fanned out.  Returns the per-member floats
        (group order) and whether the plan was cached."""
        plan, hit = self.plan_cache.get_or_build(query)
        reps, positions = self._representatives(group)
        rep_probabilities = evaluate_plan_batch(
            plan, [pending.request.tid for pending in reps]
        )
        return [rep_probabilities[slot] for slot in positions], hit

    def _ensure_compiled(self, query, head: _Pending):
        """Compile (or probe) the group's circuit ahead of the
        post-compilation deadline check.  Returns ``(token, hit,
        compile_ms)``; the token is backend-opaque and handed back to
        :meth:`_execute_intensional`."""
        compiled, hit = self.cache.get_or_compile(
            query, head.request.tid.instance, head.key[1]
        )
        return compiled, hit, (0.0 if hit else compiled.compile_ms)

    def _execute_intensional(
        self, query, group: list[_Pending], token
    ) -> list[float]:
        """Serve a compiled group: one tape sweep per distinct
        probability map, fanned out to every member (group order)."""
        tape = token.tape
        reps, positions = self._representatives(group)
        rep_probabilities = tape.evaluate_vectors(
            [
                tape.probability_vector(
                    pending.request.tid.probability_map()
                )
                for pending in reps
            ]
        )
        return [rep_probabilities[slot] for slot in positions]

    def _execute_brute(self, query, tid) -> float:
        """Serve one small hard request by world enumeration."""
        return float(probability_by_world_enumeration(query, tid))

    def _execute_sampling(self, query, tid, budget, wave_deadline):
        """Run one budget-adaptive sampling sweep; returns
        ``(estimate, engine_label)`` or raises
        :class:`~repro.core.deadline.DeadlineExceeded`."""
        plan = sampling_plan(query, tid)
        return plan.run(budget, deadline=wave_deadline), plan.engine

    def _observe_route(self, route: str, elapsed_ms: float) -> None:
        self._route_ewma[route].observe(elapsed_ms)
        self._service_ewma.observe(elapsed_ms)

    def observe_route_latency(self, route: str, latency_ms: float) -> None:
        """Warm-start one route's latency prediction (benches and tests;
        production traffic feeds the EWMAs itself).  Only the per-route
        predictor is touched — the service-wide EWMA behind predictive
        shedding still learns from real traffic only."""
        if route not in self._route_ewma:
            raise ValueError(
                f"unknown route {route!r}; expected one of {_ROUTES}"
            )
        self._route_ewma[route].observe(latency_ms)

    def _process(self, group: list[_Pending]) -> None:
        group = self._drop_expired(group)
        if not group:
            return
        query = group[0].request.query
        classification = classify_query(query)
        size = len(group)
        # Counters first: a client unblocked by its future may read
        # stats() immediately and must already see itself counted.  The
        # ``counted`` flag keeps retried members from counting twice.
        with self._lock:
            fresh = sum(1 for pending in group if not pending.counted)
            self._requests += fresh
            self._batches += 1
            self._max_batch_size = max(self._max_batch_size, size)
            if size > 1:
                self._microbatched += fresh
            for pending in group:
                pending.counted = True
        if self._fault_injector is not None:
            self._inject(group)
        if classification.extensional_safe:
            route = (
                "extensional" if isinstance(query, HQuery) else "lifted"
            )
        elif classification.h_query and classification.dd_ptime:
            route = "intensional"
        else:
            route = None
        degraded = self._split_degraded(group, route)
        group = [pending for pending in group if pending not in degraded]
        if degraded:
            self._sample_group(query, degraded, size, degraded=True)
        if not group:
            return
        if route == "extensional":
            # Safe monotone queries: lifted inference over the columnar
            # view — no lineage, no compilation.  The plan is per-query
            # state from this shard's plan cache; the whole microbatch
            # shares it, and each distinct probability map is swept
            # once, so the answers are bit-for-float identical to
            # direct per-request evaluation.
            started = time.perf_counter()
            probabilities, hit = self._execute_extensional(query, group)
            self._observe_route(
                "extensional", (time.perf_counter() - started) * 1e3
            )
            for pending, probability in zip(group, probabilities):
                self._finish(
                    pending,
                    probability,
                    "extensional",
                    cache_hit=hit,
                    batch_size=size,
                )
        elif route == "lifted":
            # Non-h safe UCQs/CQs: the Dalvi–Suciu plan from the shard's
            # plan cache, swept by the IR float evaluator — the same
            # shared-plan / distinct-map grouping as the extensional
            # route, with the same bit-for-float guarantee.
            started = time.perf_counter()
            probabilities, hit = self._execute_lifted(query, group)
            self._observe_route(
                "lifted", (time.perf_counter() - started) * 1e3
            )
            for pending, probability in zip(group, probabilities):
                self._finish(
                    pending,
                    probability,
                    "lifted",
                    cache_hit=hit,
                    batch_size=size,
                )
        elif route == "intensional":
            started = time.perf_counter()
            token, hit, compile_ms = self._ensure_compiled(
                query, group[0]
            )
            if compile_ms:
                with self._lock:
                    self._compile_ms += compile_ms
            # Compilation is the expensive prefix of this route: members
            # whose deadline ran out during it are resolved late now
            # rather than swept for nobody.
            group = self._drop_expired(group)
            if not group:
                return
            probabilities = self._execute_intensional(query, group, token)
            self._observe_route(
                "intensional", (time.perf_counter() - started) * 1e3
            )
            for pending, probability in zip(group, probabilities):
                self._finish(
                    pending,
                    probability,
                    "intensional",
                    cache_hit=hit,
                    batch_size=size,
                )
        else:
            brute = [
                pending
                for pending in group
                if len(pending.request.tid) <= self.brute_force_limit
            ]
            sampled = [
                pending
                for pending in group
                if len(pending.request.tid) > self.brute_force_limit
            ]
            enumerated: dict[int, float] = {}
            for pending in brute:
                if (
                    pending.deadline is not None
                    and pending.deadline.expired()
                ):
                    self._resolve_deadline(pending)
                    continue
                digest = pending.request.tid.probability_digest()
                probability = enumerated.get(digest)
                if probability is None:
                    started = time.perf_counter()
                    probability = self._execute_brute(
                        query, pending.request.tid
                    )
                    self._observe_route(
                        "brute_force",
                        (time.perf_counter() - started) * 1e3,
                    )
                    enumerated[digest] = probability
                self._finish(
                    pending,
                    probability,
                    "brute_force",
                    batch_size=size,
                )
            if sampled:
                self._sample_group(query, sampled, batch_size=size)

    def _split_degraded(
        self, group: list[_Pending], route: str | None
    ) -> list[_Pending]:
        """The members to downgrade to the sampling route: deadline'd
        requests whose exact route's latency EWMA predicts a miss, when
        a deadline-derived budget is still affordable.  Members without
        a deadline, routes with no observations yet, and requests
        already bound for sampling are never degraded — prediction from
        nothing would be guessing."""
        if not self.degrade_to_sampling:
            return []
        degraded = []
        for pending in group:
            if pending.deadline is None:
                continue
            exact_route = route
            if exact_route is None:
                if len(pending.request.tid) > self.brute_force_limit:
                    continue  # already the sampling route
                exact_route = "brute_force"
            ewma = self._route_ewma[exact_route]
            remaining_ms = pending.deadline.remaining_ms()
            if ewma.samples == 0 or ewma.value() <= remaining_ms:
                continue
            base = pending.request.budget or self.default_budget
            rate = (
                self._sampling_rate.value()
                if self._sampling_rate.samples > 0
                else 0.0
            )
            override = degraded_budget(base, remaining_ms, rate)
            if override is not None:
                pending.budget_override = override
                degraded.append(pending)
        return degraded

    def _sample_group(
        self,
        query,
        group: list[_Pending],
        batch_size: int,
        degraded: bool = False,
    ) -> None:
        """The large-hard-query route: one vectorized budget-adaptive
        sampling sweep per distinct ``(budget, probability map)`` in the
        microbatch.

        All requests in the group already share the ``(query, instance
        fingerprint)`` work key, so the lineage structure (clauses,
        incidence matrices, indicator tape) is built once per instance
        content; requests whose budgets *and* probability fingerprints
        also agree would draw byte-identical sample paths, so they share
        one sweep outright — the sampling analogue of the microbatched
        tape sweep.  Estimates are deterministic per budget seed, so the
        sharing is invisible in the responses.  Degraded members arrive
        here with their deadline-derived ``budget_override`` (quantized,
        so near-identical deadlines share sweeps too).

        A shared sweep runs under the *latest* member deadline — it is
        abandoned (all members resolved late, typed) only once nobody
        could use the result; the wave loop checks only between waves,
        so a sweep that completes delivers to everyone, bit-identical to
        an unhurried run.
        """
        subgroups: OrderedDict[tuple, list[_Pending]] = OrderedDict()
        for pending in group:
            budget = (
                pending.budget_override
                or pending.request.budget
                or self.default_budget
            )
            key = (budget, pending.request.tid.probability_fingerprint())
            subgroups.setdefault(key, []).append(pending)
        for (budget, _), pendings in subgroups.items():
            wave_deadline = None
            if all(pending.deadline is not None for pending in pendings):
                wave_deadline = Deadline.latest(
                    [pending.deadline for pending in pendings]
                )
            started = time.perf_counter()
            try:
                estimate, engine = self._execute_sampling(
                    query, pendings[0].request.tid, budget, wave_deadline
                )
            except DeadlineExceeded as error:
                for pending in pendings:
                    self._resolve_deadline(pending, error)
                continue
            elapsed_ms = (time.perf_counter() - started) * 1e3
            self._observe_route("sampling", elapsed_ms)
            with self._lock:
                self._sampled_requests += len(pendings)
                self._sampling_sweeps += 1
                self._sampling_waves += estimate.waves
                self._samples_drawn += estimate.samples
                self._sampling_max_half_width = max(
                    self._sampling_max_half_width, estimate.half_width
                )
                if degraded:
                    self._degraded += len(pendings)
                if estimate.samples and elapsed_ms > 0:
                    self._sampling_rate.observe(
                        estimate.samples / elapsed_ms
                    )
            for pending in pendings:
                # The unbiased Karp-Luby estimate W * fraction can land
                # outside [0, 1] when the union-bound weight W exceeds 1;
                # a *served* probability is clamped (never further from
                # the truth, which is a probability).  The half-width is
                # reported unclamped.
                self._finish(
                    pending,
                    min(1.0, max(0.0, estimate.value)),
                    engine,
                    batch_size=batch_size,
                    half_width=estimate.half_width,
                    samples=estimate.samples,
                    waves=estimate.waves,
                    degraded=degraded,
                )

    def _finish(
        self,
        pending: _Pending,
        probability: float,
        engine: str,
        *,
        cache_hit: bool = False,
        batch_size: int = 1,
        half_width: float = 0.0,
        samples: int = 0,
        waves: int = 0,
        degraded: bool = False,
    ) -> None:
        latency_ms = (time.perf_counter() - pending.enqueued) * 1e3
        self._latencies.record(latency_ms)
        with self._lock:
            self._engines[engine] += 1
        if self._breaker is not None:
            self._breaker.record_success()
        pending.future.set_result(
            QueryResponse(
                probability,
                engine,
                self.shard_id,
                cache_hit=cache_hit,
                batch_size=batch_size,
                half_width=half_width,
                samples=samples,
                waves=waves,
                latency_ms=latency_ms,
                degraded=degraded,
            )
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> ShardStats:
        cache = self.cache.stats()
        plans = self.plan_cache.stats()
        p50 = self._latencies.percentile(0.50)
        p95 = self._latencies.percentile(0.95)
        route_ewma_ms = {
            route: ewma.value()
            for route, ewma in self._route_ewma.items()
        }
        breaker_state = (
            self._breaker.state if self._breaker is not None else "closed"
        )
        breaker_trips = (
            self._breaker.trips if self._breaker is not None else 0
        )
        with self._lock:
            return ShardStats(
                shard=self.shard_id,
                instances=len(self._instances),
                requests=self._requests,
                batches=self._batches,
                max_batch_size=self._max_batch_size,
                microbatched_requests=self._microbatched,
                queue_depth=len(self._pending),
                engines=dict(self._engines),
                cache=cache,
                plans=plans,
                sampling=SamplingStats(
                    requests=self._sampled_requests,
                    sweeps=self._sampling_sweeps,
                    waves=self._sampling_waves,
                    samples=self._samples_drawn,
                    max_half_width=self._sampling_max_half_width,
                ),
                compile_ms=self._compile_ms,
                p50_ms=p50,
                p95_ms=p95,
                resilience=ResilienceStats(
                    shed=self._shed,
                    deadline_exceeded=self._deadline_exceeded,
                    degraded=self._degraded,
                    retries=self._retries,
                    failures=self._failures,
                    breaker_state=breaker_state,
                    breaker_rejected=self._breaker_rejected,
                    breaker_trips=breaker_trips,
                    injected_errors=self._injected_errors,
                    injected_latency_events=self._injected_latency,
                    injected_kills=self._injected_kills,
                    injected_stragglers=self._injected_stragglers,
                ),
                route_ewma_ms=route_ewma_ms,
            )

    def latency_snapshot(self) -> list[float]:
        """The raw latency window (for service-wide percentiles)."""
        return self._latencies.snapshot()

"""Observability for the sharded service: latency windows and snapshots.

The service answers "how is each shard doing" with one immutable
:class:`ServiceStats` — per-shard compilation-cache hit rates, compile
cost, queue depth, microbatch shape and p50/p95 latency — cheap enough to
poll from a monitoring loop without perturbing the workers.

Every snapshot type is **merge-safe across processes**: worker-side
counters travel as plain payload dicts (``to_payload`` /
``from_payload`` — JSON-able, so the asyncio gateway can serve them
over the wire) and round-trip losslessly; cross-shard aggregation keeps
the in-process semantics (sums, worst achieved half-width, worst
breaker state) no matter which process a snapshot was taken in.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import asdict, dataclass, field

from repro.pqe.engine import CompilationCacheStats
from repro.pqe.extensional import ExtensionalPlanCacheStats
from repro.serving.journal import JournalStats


class LatencyWindow:
    """A bounded, thread-safe reservoir of recent latencies (ms).

    Percentiles are nearest-rank over the retained window — exact for
    the last ``size`` requests, which is what a p50/p95 dashboard wants;
    an unbounded record would grow forever under serving traffic.
    """

    def __init__(self, size: int = 4096):
        if size < 1:
            raise ValueError(f"window size must be positive, got {size}")
        self._window: deque[float] = deque(maxlen=size)
        self._lock = threading.Lock()

    def record(self, latency_ms: float) -> None:
        with self._lock:
            self._window.append(latency_ms)

    def snapshot(self) -> list[float]:
        with self._lock:
            return list(self._window)

    def percentile(self, q: float) -> float:
        """The nearest-rank ``q``-quantile (``0 < q <= 1``) of the window;
        0.0 when nothing has been recorded."""
        return percentile(self.snapshot(), q)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank quantile of a sample (0.0 for an empty one)."""
    if not 0 < q <= 1:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, -(-len(ordered) * q // 1) - 1)  # ceil(n*q) - 1
    return ordered[int(rank)]


@dataclass(frozen=True)
class SamplingStats:
    """The sampling route's counters: how the hard-query traffic of a
    shard (or the whole service) was served by the vectorized
    budget-adaptive sampler.

    ``requests`` counts sampled requests, ``sweeps`` the shared sampling
    sweeps that served them (requests in one microbatch with equal
    budgets and probability maps share a sweep, so ``sweeps <=
    requests``), ``waves``/``samples`` the adaptive waves run and worlds
    drawn across all sweeps, and ``max_half_width`` the worst achieved
    half-width any sweep reported — the service-level view of whether
    budgets are being met.
    """

    requests: int = 0
    sweeps: int = 0
    waves: int = 0
    samples: int = 0
    max_half_width: float = 0.0

    def merged(self, other: "SamplingStats") -> "SamplingStats":
        """Aggregate two snapshots (sums; worst max_half_width)."""
        return SamplingStats(
            self.requests + other.requests,
            self.sweeps + other.sweeps,
            self.waves + other.waves,
            self.samples + other.samples,
            max(self.max_half_width, other.max_half_width),
        )


#: Breaker-state severity order for cross-shard aggregation: a service
#: snapshot reports the *worst* shard breaker.
_BREAKER_SEVERITY = {"closed": 0, "half_open": 1, "open": 2}


@dataclass(frozen=True)
class ResilienceStats:
    """The resilience layer's counters for one shard (or merged across
    the service): shed and deadline-failed requests, degraded answers,
    retries and terminal worker failures, circuit-breaker state and
    activity, and the faults the optional injector actually fired."""

    shed: int = 0
    deadline_exceeded: int = 0
    degraded: int = 0
    retries: int = 0
    failures: int = 0
    breaker_state: str = "closed"
    breaker_rejected: int = 0
    breaker_trips: int = 0
    injected_errors: int = 0
    injected_latency_events: int = 0
    injected_kills: int = 0
    injected_stragglers: int = 0

    def merged(self, other: "ResilienceStats") -> "ResilienceStats":
        """Aggregate two snapshots (sums; worst breaker state)."""
        worst = max(
            self.breaker_state,
            other.breaker_state,
            key=lambda state: _BREAKER_SEVERITY.get(state, 0),
        )
        return ResilienceStats(
            self.shed + other.shed,
            self.deadline_exceeded + other.deadline_exceeded,
            self.degraded + other.degraded,
            self.retries + other.retries,
            self.failures + other.failures,
            worst,
            self.breaker_rejected + other.breaker_rejected,
            self.breaker_trips + other.breaker_trips,
            self.injected_errors + other.injected_errors,
            self.injected_latency_events + other.injected_latency_events,
            self.injected_kills + other.injected_kills,
            self.injected_stragglers + other.injected_stragglers,
        )


@dataclass(frozen=True)
class SupervisorStats:
    """The worker supervisor's counters for one shard (or merged across
    the service).  On the ``threads`` backend there is no process to
    supervise, so the defaults — alive, never restarted — hold.

    ``restarts`` counts respawns (injected crashes and unexpected
    deaths alike), ``replayed_instances`` the instance registrations
    replayed into fresh workers, ``respawn_ms`` total wall-clock spent
    respawning, ``worker_alive`` whether the (every) worker process is
    currently alive, and ``gave_up`` whether a supervisor exhausted
    ``max_restarts`` and left its shard dark.
    """

    restarts: int = 0
    replayed_instances: int = 0
    respawn_ms: float = 0.0
    worker_alive: bool = True
    gave_up: bool = False

    def merged(self, other: "SupervisorStats") -> "SupervisorStats":
        """Aggregate two snapshots (sums; alive only if all alive,
        gave_up if any gave up)."""
        return SupervisorStats(
            self.restarts + other.restarts,
            self.replayed_instances + other.replayed_instances,
            self.respawn_ms + other.respawn_ms,
            self.worker_alive and other.worker_alive,
            self.gave_up or other.gave_up,
        )


@dataclass(frozen=True)
class ReplicationStats:
    """Placement and routing counters for replicated instances.

    ``replicated_instances`` / ``replicas_placed`` describe the current
    placement table (instances registered with ``replicas >= 2`` and the
    extra copies placed for them); ``spread`` counts requests served off
    the primary shard while the primary was healthy (load spreading),
    ``failovers`` requests routed to a replica *because* the primary was
    unhealthy (breaker open, worker dead, or stopped)."""

    replicated_instances: int = 0
    replicas_placed: int = 0
    spread: int = 0
    failovers: int = 0


@dataclass(frozen=True)
class HedgeStats:
    """Hedged-request counters for the service.

    ``launched`` backups actually issued, ``primary_wins`` /
    ``backup_wins`` which attempt resolved the caller's future first,
    ``cancelled`` losing attempts retired cooperatively (deadline
    expired + future cancelled), ``failed_backups`` backup attempts that
    were rejected at submission or failed typed."""

    launched: int = 0
    primary_wins: int = 0
    backup_wins: int = 0
    cancelled: int = 0
    failed_backups: int = 0


@dataclass(frozen=True)
class IdempotencyStats:
    """The gateway's idempotent-retry journal counters.

    ``hits`` are retries answered verbatim from a recorded response,
    ``joins`` retries that attached to a still-in-flight execution of
    the same ``(tenant, key)`` (no duplicate submission — for sampled
    routes, no second draw-stream sweep), ``entries`` the keys
    currently retained, ``evictions`` entries dropped by the LRU
    bound."""

    hits: int = 0
    joins: int = 0
    entries: int = 0
    evictions: int = 0

    def to_payload(self) -> dict:
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "IdempotencyStats":
        return cls(**payload)


@dataclass(frozen=True)
class GatewayStats:
    """One gateway's edge counters, payload-round-trippable like
    :class:`ServiceStats` and surfaced by the wire ``stats`` op.

    Connection counters track the listener (``connections`` accepted
    over the gateway's lifetime, ``active_connections`` now,
    ``rejected_connections`` turned away at the ``max_connections``
    cap, ``idle_timeouts`` closed by the per-connection read timeout,
    ``line_too_long`` closed after a typed oversized-line reply).
    Request counters split the typed admission rejections
    (``draining`` / ``overloaded`` / ``quota``) from ``requests``
    actually submitted.  ``replayed_instances`` is what journal replay
    re-registered at start; ``journal`` and ``idempotency`` nest the
    durability and retry-journal counters; the ``injected_*`` counters
    record the network chaos lanes that actually fired here."""

    connections: int = 0
    active_connections: int = 0
    rejected_connections: int = 0
    idle_timeouts: int = 0
    line_too_long: int = 0
    requests: int = 0
    draining_rejections: int = 0
    overloaded_rejections: int = 0
    quota_rejections: int = 0
    replayed_instances: int = 0
    journal: JournalStats = field(default_factory=JournalStats)
    idempotency: IdempotencyStats = field(
        default_factory=IdempotencyStats
    )
    injected_conn_drops: int = 0
    injected_partial_writes: int = 0
    injected_slow_client_events: int = 0

    def to_payload(self) -> dict:
        """This snapshot as a JSON-able dict (plain ints/strs)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "GatewayStats":
        """Rebuild a snapshot serialized by :meth:`to_payload` —
        ``GatewayStats.from_payload(s.to_payload()) == s``."""
        data = dict(payload)
        data["journal"] = JournalStats(**data["journal"])
        data["idempotency"] = IdempotencyStats(**data["idempotency"])
        return cls(**data)


@dataclass(frozen=True)
class ShardStats:
    """One shard's snapshot (all counters since construction, latencies
    over the shard's bounded window)."""

    shard: int
    instances: int  #: distinct registered instance fingerprints
    requests: int
    batches: int  #: microbatch sweeps run (>= 1 request each)
    max_batch_size: int
    microbatched_requests: int  #: requests served in sweeps of size >= 2
    queue_depth: int  #: requests enqueued but not yet drained
    engines: dict[str, int]  #: requests answered per engine label
    cache: CompilationCacheStats  #: this shard's own compilation cache
    plans: ExtensionalPlanCacheStats  #: this shard's extensional plans
    sampling: SamplingStats  #: this shard's sampled hard-query traffic
    compile_ms: float  #: total wall-clock spent compiling on this shard
    p50_ms: float
    p95_ms: float
    #: this shard's resilience counters (shed / deadlines / degradation /
    #: breaker); defaulted so hand-built snapshots stay cheap
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    #: per-route EWMA latency predictions (ms), keyed by route label —
    #: what the shed and degradation policies consult
    route_ewma_ms: dict[str, float] = field(default_factory=dict)
    #: worker-supervision counters (trivial on the threads backend)
    supervisor: SupervisorStats = field(default_factory=SupervisorStats)

    @property
    def cache_hit_rate(self) -> float:
        """Hits over cache accesses (0.0 before the first access)."""
        accesses = self.cache.hits + self.cache.misses
        return self.cache.hits / accesses if accesses else 0.0

    @property
    def plan_hit_rate(self) -> float:
        """Plan-cache hits over accesses (0.0 before the first access)."""
        accesses = self.plans.hits + self.plans.misses
        return self.plans.hits / accesses if accesses else 0.0

    def to_payload(self) -> dict:
        """This snapshot as a JSON-able dict (plain ints/floats/strs)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardStats":
        """Rebuild a snapshot serialized by :meth:`to_payload` —
        ``ShardStats.from_payload(s.to_payload()) == s``."""
        data = dict(payload)
        data["cache"] = CompilationCacheStats(**data["cache"])
        data["plans"] = ExtensionalPlanCacheStats(**data["plans"])
        data["sampling"] = SamplingStats(**data["sampling"])
        data["resilience"] = ResilienceStats(**data["resilience"])
        if "supervisor" in data:
            data["supervisor"] = SupervisorStats(**data["supervisor"])
        return cls(**data)


@dataclass(frozen=True)
class ServiceStats:
    """The whole service: per-shard snapshots plus cross-shard
    aggregates (latency percentiles are computed over the union of the
    shards' windows, not averaged per shard)."""

    shards: tuple[ShardStats, ...] = field(default_factory=tuple)
    requests: int = 0
    batches: int = 0
    microbatched_requests: int = 0
    queue_depth: int = 0
    compile_ms: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    #: service-level routing counters — these live at the service (the
    #: shards cannot see placement or hedging), so unlike the derived
    #: ``sampling``/``resilience`` aggregates they are real serialized
    #: fields
    replication: ReplicationStats = field(default_factory=ReplicationStats)
    hedging: HedgeStats = field(default_factory=HedgeStats)

    @property
    def supervision(self) -> SupervisorStats:
        """Service-wide supervision counters (per-shard snapshots
        merged: sums, alive only if all workers alive)."""
        merged = SupervisorStats()
        for shard in self.shards:
            merged = merged.merged(shard.supervisor)
        return merged

    @property
    def sampling(self) -> SamplingStats:
        """Service-wide sampling-route counters (per-shard snapshots
        merged: sums, worst achieved half-width)."""
        merged = SamplingStats()
        for shard in self.shards:
            merged = merged.merged(shard.sampling)
        return merged

    @property
    def resilience(self) -> ResilienceStats:
        """Service-wide resilience counters (per-shard snapshots merged:
        sums, worst breaker state)."""
        merged = ResilienceStats()
        for shard in self.shards:
            merged = merged.merged(shard.resilience)
        return merged

    @property
    def cache_hit_rate(self) -> float:
        """Service-wide hits over cache accesses."""
        hits = sum(s.cache.hits for s in self.shards)
        accesses = hits + sum(s.cache.misses for s in self.shards)
        return hits / accesses if accesses else 0.0

    @property
    def engines(self) -> dict[str, int]:
        """Service-wide requests answered per engine label."""
        merged: dict[str, int] = {}
        for shard in self.shards:
            for engine, count in shard.engines.items():
                merged[engine] = merged.get(engine, 0) + count
        return merged

    def to_payload(self) -> dict:
        """This snapshot as a JSON-able dict.  The derived aggregates
        (``sampling``/``resilience``/``engines``) are *not* materialized
        — they are recomputed by the receiving side's properties, so a
        payload merged from worker snapshots keeps the exact worst-
        breaker/EWMA semantics of an in-process snapshot."""
        payload = asdict(self)
        payload["shards"] = [shard.to_payload() for shard in self.shards]
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ServiceStats":
        """Rebuild a snapshot serialized by :meth:`to_payload`."""
        data = dict(payload)
        data["shards"] = tuple(
            ShardStats.from_payload(shard) for shard in data["shards"]
        )
        if "replication" in data:
            data["replication"] = ReplicationStats(**data["replication"])
        if "hedging" in data:
            data["hedging"] = HedgeStats(**data["hedging"])
        return cls(**data)

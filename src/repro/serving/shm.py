"""Shared-memory publication of probability columns.

The multiprocess serving backend never pickles a TID per request:
the *numeric* content of an instance — the per-tuple
``(numerator, denominator)`` columns of
:func:`repro.db.columnar.probability_columns` — is written once into a
``multiprocessing.shared_memory`` segment and addressed by content:
the segment key is ``(Instance.shard_key(), probability_digest())``,
both process-stable blake2b digests, so every request that shares a
numeric content shares one segment, and a ``probability_version`` bump
simply publishes a *new* segment under the new digest.

Segment layout (``count`` int64 pairs, little-endian)::

    [ numerators  : count * int64 ]
    [ denominators: count * int64 ]

aligned with ``instance.tuple_ids()`` order on both sides.  Entries
whose numerator or denominator exceeds an int64 word hold the ``0/0``
sentinel and travel in the (tiny, pickled) ``overflow`` list of the
registry lease instead — exactness is never rounded away by the wire
format.

Lifecycle (the :class:`SegmentRegistry`, parent side):

* :meth:`~SegmentRegistry.acquire` publishes the segment on first use
  and *pins* it for the duration of one in-flight RPC; publishing a new
  digest for a shard key marks that key's older digests **stale**.
* :meth:`~SegmentRegistry.release` unpins; a stale segment is unlinked
  the moment its pin count reaches zero — a ``probability_version``
  bump therefore reclaims the superseded segment as soon as the last
  request using it resolves, never under a live reader.
* :meth:`~SegmentRegistry.unlink_all` (``stop()``/``close()``) unlinks
  everything; a stopped service leaves no ``/dev/shm`` entries behind.

Workers attach, copy the two columns out, and detach immediately
(:func:`read_columns`) — the attachment is transient, so the parent's
unlink ordering (pins + the FIFO pipe barrier: a segment is released
only after the RPC that referenced it replied) is the whole ownership
story.  The attach side also unregisters from the
``resource_tracker``: on 3.11 the tracker registers attachments too,
and a tracked attachment would double-unlink the parent's segment when
the worker exits.

Supervisor respawn leans on two idempotency guarantees here.  A
respawned worker re-attaching a segment its predecessor already read
runs the same unregister-before-use dance (the tracker unregister is a
best-effort set discard, so a name erased by the dead worker's
attachment is simply absent); and :meth:`SegmentRegistry.unlink_all`
is idempotent *and* tolerant of segments a crashed attachment raced
(``_unlink`` re-registers with the tracker before unlinking and
swallows ``FileNotFoundError``), so kill-recover-stop cycles leave
zero ``/dev/shm`` entries — which the kill-recovery test asserts.
"""

from __future__ import annotations

import os
import struct
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

from repro.db.columnar import ProbabilityColumns

#: Prefix of every segment name this process publishes (pid-scoped so
#: concurrent test runs never collide and tests can assert on leaks).
def segment_prefix() -> str:
    return f"pqe{os.getpid():x}"


_WORD = struct.Struct("<q")


@dataclass
class _Segment:
    key: tuple[int, int]
    shm: shared_memory.SharedMemory
    count: int
    overflow: tuple[tuple[int, int, int], ...]
    pins: int = 0
    stale: bool = False


@dataclass(frozen=True)
class SegmentLease:
    """What :meth:`SegmentRegistry.acquire` hands out: everything a
    worker needs to attach (name/count/overflow) plus whether this call
    published the segment (``fresh`` — the caller then announces it to
    the worker exactly once)."""

    key: tuple[int, int]
    name: str
    count: int
    overflow: tuple[tuple[int, int, int], ...]
    fresh: bool


class SegmentRegistry:
    """Parent-side owner of every published probability segment."""

    _instances = 0
    _instances_lock = threading.Lock()

    def __init__(self) -> None:
        with SegmentRegistry._instances_lock:
            uid = SegmentRegistry._instances
            SegmentRegistry._instances += 1
        self._prefix = f"{segment_prefix()}r{uid:x}"
        self._lock = threading.Lock()
        self._segments: dict[tuple[int, int], _Segment] = {}
        self._closed = False

    # -- publication ---------------------------------------------------

    def acquire(
        self, shard_key: int, digest: int, columns: ProbabilityColumns
    ) -> SegmentLease:
        """Pin (publishing on first use) the segment for ``columns``
        under ``(shard_key, digest)``.  Publishing a new digest marks
        the shard key's other digests stale."""
        key = (shard_key, digest)
        with self._lock:
            if self._closed:
                raise RuntimeError("segment registry is closed")
            segment = self._segments.get(key)
            if segment is None:
                segment = self._publish(key, columns)
                fresh = True
                for other_key, other in self._segments.items():
                    if other_key[0] == shard_key and other_key != key:
                        other.stale = True
                self._segments[key] = segment
                reclaim = [
                    other
                    for other in self._segments.values()
                    if other.stale and other.pins == 0
                ]
                for other in reclaim:
                    del self._segments[other.key]
            else:
                fresh = False
                reclaim = []
            segment.pins += 1
        for other in reclaim:
            _unlink(other.shm)
        return SegmentLease(
            key, segment.shm.name, segment.count, segment.overflow, fresh
        )

    def _publish(
        self, key: tuple[int, int], columns: ProbabilityColumns
    ) -> _Segment:
        count = len(columns)
        name = f"{self._prefix}-{key[0]:016x}-{key[1]:016x}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, 16 * count)
        )
        buffer = shm.buf
        for slot, (num, den) in enumerate(
            zip(columns.numerators, columns.denominators)
        ):
            _WORD.pack_into(buffer, 8 * slot, num)
            _WORD.pack_into(buffer, 8 * (count + slot), den)
        return _Segment(key, shm, count, columns.overflow)

    # -- lifecycle -----------------------------------------------------

    def release(self, lease: SegmentLease) -> None:
        """Unpin; unlink immediately if the segment is stale and idle."""
        reclaim = None
        with self._lock:
            segment = self._segments.get(lease.key)
            if segment is None:
                return
            segment.pins -= 1
            if segment.stale and segment.pins <= 0:
                del self._segments[lease.key]
                reclaim = segment
        if reclaim is not None:
            _unlink(reclaim.shm)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def unlink_all(self) -> None:
        """Unlink every segment (idempotent — a second call, e.g. a
        shard *and* its owning service both shutting down, finds the
        books already empty and does nothing; registry unusable after)."""
        with self._lock:
            self._closed = True
            segments = list(self._segments.values())
            self._segments.clear()
        for segment in segments:
            _unlink(segment.shm)

    def live_names(self) -> list[str]:
        """The names currently published (tests and stats)."""
        with self._lock:
            return sorted(s.shm.name for s in self._segments.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)


def _unlink(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
        # Forked workers share the parent's resource tracker, so the
        # attach-side unregister (read_columns) may already have erased
        # this name from the tracker's books; re-register before unlink
        # (a set add, idempotent) so unlink's own unregister always
        # finds the name and the tracker never logs a KeyError.
        try:  # pragma: no cover - tracker internals are best-effort
            resource_tracker.register(shm._name, "shared_memory")
        except Exception:
            pass
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already reclaimed
        pass


def read_columns(
    name: str, count: int, overflow: tuple[tuple[int, int, int], ...]
) -> ProbabilityColumns:
    """Attach to a published segment, copy the columns out, detach.

    Runs on the worker side.  The attachment is unregistered from the
    ``resource_tracker`` before use so a worker exit can never unlink a
    segment the parent still owns (3.11 tracks attachments too)."""
    shm = shared_memory.SharedMemory(name=name, create=False)
    try:
        try:  # pragma: no cover - tracker internals are best-effort
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        buffer = shm.buf
        numerators = tuple(
            _WORD.unpack_from(buffer, 8 * slot)[0] for slot in range(count)
        )
        denominators = tuple(
            _WORD.unpack_from(buffer, 8 * (count + slot))[0]
            for slot in range(count)
        )
    finally:
        shm.close()
    return ProbabilityColumns(numerators, denominators, tuple(overflow))

"""The gateway's durable registration journal.

A restarted gateway must come back knowing every instance its clients
registered — same facts, same exact-rational probabilities, same
``replicas`` — so recovery is *bit-invisible*: the instance re-derives
the same :meth:`~repro.db.relation.Instance.shard_key`, lands on the
same :func:`~repro.serving.service.placement_ring`, and every engine
recomputes the same content-determined floats.  The journal is the
source of truth that makes that possible: an append-only JSON-lines
file of ``register`` records, one per line, each wrapped with a
content checksum::

    {"v": 1, "sum": "<blake2b-64 hex>", "record": {"instance": ...,
     "relations": [...], "facts": [...], "replicas": 1}}

The checksum covers the *canonical* encoding of the record (sorted
keys, compact separators), so replay detects both torn tails and bit
rot, and the canonical form is what gets hashed no matter which process
wrote it.

Crash semantics (the part worth being pedantic about):

- **Appends are atomic at the line level.**  A crash mid-append leaves
  at most one torn final line.  :meth:`replay` detects it — trailing
  junk that does not parse, fails its checksum, or lacks the newline
  terminator — truncates the file back to the last durable record, and
  carries on.  Only the *tail* may be forgiven this way: a mangled
  record with valid records after it means the file was corrupted, not
  torn, and replay raises :class:`JournalCorrupt` rather than silently
  serving a hole in the catalog.
- **``fsync`` policy is explicit.**  ``"always"`` fsyncs after every
  append (a crashed gateway forgets nothing it acknowledged);
  ``"batch"`` flushes to the OS per append and fsyncs only on
  :meth:`sync` / :meth:`compact` / :meth:`close` (faster, may forget
  the tail of unsynced acknowledgements on *power* loss — process
  crashes lose nothing either way); ``"never"`` leaves durability
  entirely to the OS.
- **Compaction is atomic.**  :meth:`compact` rewrites the live tail —
  the *last* record per instance name, in first-registration order —
  into a temp file in the same directory, fsyncs it, and
  ``os.replace``\\ s it over the journal, so a crash during compaction
  leaves either the old file or the new one, never a mix.  With the
  gateway's replace-on-re-register semantics, superseded registrations
  are dead weight the next replay would apply and then throw away;
  ``auto_compact_dead`` compacts automatically once that many dead
  records accumulate.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "JournalCorrupt",
    "JournalStats",
    "RegistrationJournal",
]

#: Journal line-format version; bumped only on incompatible changes.
_VERSION = 1

_FSYNC_POLICIES = ("always", "batch", "never")


class JournalCorrupt(RuntimeError):
    """A non-tail journal record is mangled: the file was corrupted
    (not merely torn by a crash mid-append), and replaying around the
    damage would silently drop registrations.  Recovery is manual by
    design — serve from a backup or accept the explicit data loss."""


@dataclass(frozen=True)
class JournalStats:
    """Counters for one journal's lifetime (payload-round-trippable,
    merged into :class:`~repro.serving.stats.GatewayStats`).

    ``appended``/``replayed`` count records written and records applied
    by the last :meth:`~RegistrationJournal.replay`; ``live`` is the
    number of distinct instance names currently recorded, ``dead`` the
    superseded records compaction would drop; ``compactions`` the
    rewrites performed, ``torn_records`` / ``torn_bytes`` what tail
    truncation discarded across replays."""

    appended: int = 0
    replayed: int = 0
    live: int = 0
    dead: int = 0
    compactions: int = 0
    torn_records: int = 0
    torn_bytes: int = 0

    def to_payload(self) -> dict:
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "JournalStats":
        return cls(**payload)


def _canonical(record: dict) -> bytes:
    """The canonical encoding checksums cover: sorted keys, compact
    separators — stable across writer processes and dict orders."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _checksum(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


def encode_record(record: dict) -> bytes:
    """One durable journal line (newline-terminated) for ``record``."""
    body = _canonical(record)
    envelope = {
        "v": _VERSION,
        "sum": _checksum(body),
        "record": record,
    }
    return json.dumps(envelope, separators=(",", ":")).encode() + b"\n"


def _decode_line(line: bytes) -> dict | None:
    """The record inside a journal line, or ``None`` if the line is
    mangled (unparseable, wrong shape, or checksum mismatch)."""
    try:
        envelope = json.loads(line)
    except ValueError:
        return None
    if (
        not isinstance(envelope, dict)
        or envelope.get("v") != _VERSION
        or "record" not in envelope
        or not isinstance(envelope["record"], dict)
    ):
        return None
    record = envelope["record"]
    if envelope.get("sum") != _checksum(_canonical(record)):
        return None
    return record


class RegistrationJournal:
    """An append-only, checksummed, compactable registration log.

    Thread-safe: the gateway appends from its event loop but benches
    and tests may poke it from other threads; one lock covers the file
    handle and the counters.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: str = "always",
        auto_compact_dead: int | None = None,
    ):
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {_FSYNC_POLICIES}, got {fsync!r}"
            )
        if auto_compact_dead is not None and auto_compact_dead < 1:
            raise ValueError(
                f"auto_compact_dead must be positive or None, "
                f"got {auto_compact_dead}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self.auto_compact_dead = auto_compact_dead
        self._lock = threading.Lock()
        self._file = None
        self._appended = 0
        self._replayed = 0
        self._compactions = 0
        self._torn_records = 0
        self._torn_bytes = 0
        #: last record per instance name, in first-appearance order —
        #: exactly the compacted image of the file.
        self._live: dict[str, dict] = {}
        self._records = 0  # records currently in the file

    # -- durability ----------------------------------------------------

    def _open(self):
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "ab")
        return self._file

    def _sync_locked(self, force: bool = False) -> None:
        if self._file is None:
            return
        self._file.flush()
        if force or self.fsync == "always":
            os.fsync(self._file.fileno())

    def append(self, record: dict) -> None:
        """Durably append one register record (``record["instance"]``
        names the instance; the rest is opaque to the journal)."""
        name = record.get("instance")
        if not isinstance(name, str) or not name:
            raise ValueError(
                f"journal records need a non-empty 'instance' name, "
                f"got {record!r}"
            )
        line = encode_record(record)
        with self._lock:
            handle = self._open()
            handle.write(line)
            self._sync_locked()
            self._appended += 1
            self._records += 1
            self._live[name] = record
            compact_now = (
                self.auto_compact_dead is not None
                and self._dead_locked() >= self.auto_compact_dead
            )
            if compact_now:
                self._compact_locked()

    def sync(self) -> None:
        """Force pending appends to disk regardless of policy."""
        with self._lock:
            self._sync_locked(force=True)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._sync_locked(force=True)
                self._file.close()
                self._file = None

    # -- replay --------------------------------------------------------

    def replay(self) -> list[dict]:
        """Read every durable record, in order, truncating a torn tail.

        Returns the record list (the caller re-applies them through its
        normal register path).  A missing file is an empty journal.  A
        mangled record *before* the tail raises :class:`JournalCorrupt`.
        """
        with self._lock:
            if self._file is not None:
                self._sync_locked(force=True)
            if not self.path.exists():
                self._replayed = 0
                self._live = {}
                self._records = 0
                return []
            raw = self.path.read_bytes()
            records: list[dict] = []
            good_end = 0
            offset = 0
            torn: bytes | None = None
            while offset < len(raw):
                newline = raw.find(b"\n", offset)
                if newline < 0:
                    torn = raw[offset:]  # unterminated: torn mid-append
                    break
                line = raw[offset : newline + 1]
                record = _decode_line(line)
                if record is None:
                    if newline + 1 < len(raw):
                        # A mangled record *followed by more records* is
                        # never a torn append — refuse to replay around
                        # the hole it would leave in the catalog.
                        raise JournalCorrupt(
                            f"{self.path}: mangled record at byte "
                            f"{good_end} with "
                            f"{len(raw) - newline - 1} bytes after it — "
                            f"corrupted journal, not a torn tail"
                        )
                    torn = line  # mangled final line: torn mid-append
                    break
                records.append(record)
                offset = newline + 1
                good_end = offset
            if torn is not None:
                self._torn_records += 1
                self._torn_bytes += len(torn)
                self._truncate_locked(good_end)
            self._replayed = len(records)
            self._records = len(records)
            self._live = {}
            for record in records:
                self._live[record["instance"]] = record
            return records

    def _truncate_locked(self, size: int) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        with open(self.path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())

    # -- compaction ----------------------------------------------------

    def _dead_locked(self) -> int:
        return self._records - len(self._live)

    def compact(self) -> int:
        """Atomically rewrite the journal down to its live records (the
        last one per instance name); returns the records dropped."""
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        dropped = self._dead_locked()
        if self._file is not None:
            self._file.close()
            self._file = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        snapshot = self.path.with_name(self.path.name + ".compact")
        with open(snapshot, "wb") as handle:
            for record in self._live.values():
                handle.write(encode_record(record))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(snapshot, self.path)
        self._records = len(self._live)
        self._compactions += 1
        return dropped

    def forget(self, name: str) -> None:
        """Drop ``name`` from the live image (no file write until the
        next compaction — an unregister is just future dead weight)."""
        with self._lock:
            self._live.pop(name, None)

    # -- observability -------------------------------------------------

    @property
    def live_records(self) -> dict[str, dict]:
        """The compacted image: last record per name, insertion order."""
        with self._lock:
            return dict(self._live)

    def stats(self) -> JournalStats:
        with self._lock:
            return JournalStats(
                appended=self._appended,
                replayed=self._replayed,
                live=len(self._live),
                dead=self._dead_locked(),
                compactions=self._compactions,
                torn_records=self._torn_records,
                torn_bytes=self._torn_bytes,
            )

"""A sharded, concurrent serving layer over the PQE engines.

The production face of the repo (see ``docs/serving.md``): registered
instances partition across shards by a process-stable content digest;
each shard owns its compilation cache, worker pool and stats; the
``submit`` / ``submit_batch`` front end microbatches same-work requests
into single vectorized tape sweeps, and hard queries degrade to exact
brute force or to the vectorized budget-adaptive sampling engine
(:mod:`repro.pqe.approximate`) under per-request accuracy budgets —
concurrent same-work hard requests share one sampling sweep the way
d-D requests share one tape sweep.

The resilience layer (:mod:`repro.serving.resilience`,
:mod:`repro.serving.faults`) adds per-request deadlines and priorities,
bounded queues with priority-aware load shedding, per-shard circuit
breakers, deterministic retry backoff, graceful degradation of
deadline-pressed exact routes to deadline-derived sampling budgets
(``degraded=True`` responses with honest error bars), and seeded,
replayable fault injection for chaos testing.
"""

from repro.serving.api import (
    AccuracyBudget,
    QueryRequest,
    QueryResponse,
)
from repro.serving.faults import FaultInjector, TransientFaultError
from repro.serving.resilience import (
    CircuitBreaker,
    CircuitBreakerOpen,
    Deadline,
    DeadlineExceeded,
    LatencyEwma,
    RetryPolicy,
    ServiceStopped,
    ShardOverloaded,
    degraded_budget,
)
from repro.serving.service import ShardedService
from repro.serving.shard import Shard
from repro.serving.stats import (
    LatencyWindow,
    ResilienceStats,
    SamplingStats,
    ServiceStats,
    ShardStats,
    percentile,
)

__all__ = [
    "AccuracyBudget",
    "CircuitBreaker",
    "CircuitBreakerOpen",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "LatencyEwma",
    "LatencyWindow",
    "QueryRequest",
    "QueryResponse",
    "ResilienceStats",
    "RetryPolicy",
    "SamplingStats",
    "ServiceStats",
    "ServiceStopped",
    "Shard",
    "ShardOverloaded",
    "ShardStats",
    "ShardedService",
    "TransientFaultError",
    "degraded_budget",
    "percentile",
]

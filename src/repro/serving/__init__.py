"""A sharded, concurrent serving layer over the PQE engines.

The production face of the repo (see ``docs/serving.md``): registered
instances partition across shards by a process-stable content digest;
each shard owns its compilation cache, worker pool and stats; the
``submit`` / ``submit_batch`` front end microbatches same-work requests
into single vectorized tape sweeps, and hard queries degrade to exact
brute force or to the vectorized budget-adaptive sampling engine
(:mod:`repro.pqe.approximate`) under per-request accuracy budgets —
concurrent same-work hard requests share one sampling sweep the way
d-D requests share one tape sweep.
"""

from repro.serving.api import (
    AccuracyBudget,
    QueryRequest,
    QueryResponse,
)
from repro.serving.service import ShardedService
from repro.serving.shard import Shard
from repro.serving.stats import (
    LatencyWindow,
    SamplingStats,
    ServiceStats,
    ShardStats,
    percentile,
)

__all__ = [
    "AccuracyBudget",
    "LatencyWindow",
    "QueryRequest",
    "QueryResponse",
    "SamplingStats",
    "ServiceStats",
    "Shard",
    "ShardedService",
    "ShardStats",
    "percentile",
]

"""A sharded, concurrent serving layer over the PQE engines.

The production face of the repo (see ``docs/serving.md``): registered
instances partition across shards by a process-stable content digest;
each shard owns its compilation cache, worker pool and stats; the
``submit`` / ``submit_batch`` front end microbatches same-work requests
into single vectorized tape sweeps, and hard queries degrade to exact
brute force or to the exact-draw samplers under per-request accuracy
budgets.
"""

from repro.serving.api import (
    AccuracyBudget,
    QueryRequest,
    QueryResponse,
)
from repro.serving.service import ShardedService
from repro.serving.shard import Shard
from repro.serving.stats import (
    LatencyWindow,
    ServiceStats,
    ShardStats,
    percentile,
)

__all__ = [
    "AccuracyBudget",
    "LatencyWindow",
    "QueryRequest",
    "QueryResponse",
    "ServiceStats",
    "Shard",
    "ShardedService",
    "ShardStats",
    "percentile",
]

"""A sharded, concurrent serving layer over the PQE engines.

The production face of the repo (see ``docs/serving.md``): registered
instances partition across shards by a process-stable content digest;
each shard owns its compilation cache, worker pool and stats; the
``submit`` / ``submit_batch`` front end microbatches same-work requests
into single vectorized tape sweeps, and hard queries degrade to exact
brute force or to the vectorized budget-adaptive sampling engine
(:mod:`repro.pqe.approximate`) under per-request accuracy budgets —
concurrent same-work hard requests share one sampling sweep the way
d-D requests share one tape sweep.

The resilience layer (:mod:`repro.serving.resilience`,
:mod:`repro.serving.faults`) adds per-request deadlines and priorities,
bounded queues with priority-aware load shedding, per-shard circuit
breakers, deterministic retry backoff, graceful degradation of
deadline-pressed exact routes to deadline-derived sampling budgets
(``degraded=True`` responses with honest error bars), and seeded,
replayable fault injection for chaos testing.

Backends: ``ShardedService(backend="threads")`` (default) serves from
in-process thread pools; ``backend="processes"`` gives every shard a
dedicated worker process fed through shared-memory probability columns
(:mod:`repro.serving.worker`, :mod:`repro.serving.shm`) — same
interface, bit-for-float identical answers, one core per shard.  The
asyncio JSON-lines gateway (:mod:`repro.serving.gateway`) fronts either
backend with per-tenant quotas and backpressure, and the durable edge
(:mod:`repro.serving.journal`) adds a checksummed registration journal
with crash recovery, graceful drain, and idempotent retries.
"""

from repro.serving.api import (
    AccuracyBudget,
    QueryRequest,
    QueryResponse,
)
from repro.serving.faults import (
    FaultInjector,
    TransientFaultError,
    WorkerCrashError,
)
from repro.serving.gateway import (
    Gateway,
    GatewayDraining,
    GatewayOverloaded,
    GatewayServer,
    IdleTimeout,
    LineTooLong,
    TenantQuotaExceeded,
    TooManyConnections,
)
from repro.serving.journal import (
    JournalCorrupt,
    JournalStats,
    RegistrationJournal,
)
from repro.serving.resilience import (
    CircuitBreaker,
    CircuitBreakerOpen,
    Deadline,
    DeadlineExceeded,
    HedgePolicy,
    LatencyEwma,
    RetryPolicy,
    ServiceStopped,
    ShardOverloaded,
    SupervisorPolicy,
    degraded_budget,
)
from repro.serving.service import ShardedService, placement_ring
from repro.serving.shard import Shard
from repro.serving.shm import SegmentRegistry
from repro.serving.worker import ProcessShard
from repro.serving.stats import (
    GatewayStats,
    HedgeStats,
    IdempotencyStats,
    LatencyWindow,
    ReplicationStats,
    ResilienceStats,
    SamplingStats,
    ServiceStats,
    ShardStats,
    SupervisorStats,
    percentile,
)

__all__ = [
    "AccuracyBudget",
    "CircuitBreaker",
    "CircuitBreakerOpen",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "Gateway",
    "GatewayDraining",
    "GatewayOverloaded",
    "GatewayServer",
    "GatewayStats",
    "HedgePolicy",
    "HedgeStats",
    "IdempotencyStats",
    "IdleTimeout",
    "JournalCorrupt",
    "JournalStats",
    "LatencyEwma",
    "LatencyWindow",
    "LineTooLong",
    "RegistrationJournal",
    "ProcessShard",
    "QueryRequest",
    "QueryResponse",
    "ReplicationStats",
    "ResilienceStats",
    "RetryPolicy",
    "SamplingStats",
    "SegmentRegistry",
    "ServiceStats",
    "ServiceStopped",
    "Shard",
    "SupervisorPolicy",
    "SupervisorStats",
    "TenantQuotaExceeded",
    "TooManyConnections",
    "ShardOverloaded",
    "ShardStats",
    "ShardedService",
    "TransientFaultError",
    "WorkerCrashError",
    "degraded_budget",
    "placement_ring",
    "percentile",
]

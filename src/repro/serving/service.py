"""The front end of the sharded PQE service.

:class:`ShardedService` turns :mod:`repro.pqe.engine` into a concurrent,
multi-tenant query service: registered instances are partitioned across
``N`` shards by a process-stable digest of their
:meth:`~repro.db.relation.Instance.content_fingerprint`, each shard owns
its compilation cache / workers / stats, and the ``submit`` /
``submit_batch`` API microbatches same-work requests into single
vectorized sweeps.  Routing follows the Figure-1 dichotomy per request:
safe monotone (H+) queries run *extensionally* — lifted plans over
columnar probability views, no lineage or circuit at all; the remaining
d-D(PTIME) queries compile through the shard cache and run batched tape
sweeps; hard queries fall back to exact enumeration when the instance
is small, and to the vectorized budget-adaptive Karp–Luby (UCQ) or
Monte-Carlo (non-monotone) sampling sweeps of
:mod:`repro.pqe.approximate` under a per-request
:class:`~repro.pqe.approximate.AccuracyBudget` otherwise — with
same-budget same-probability requests in a microbatch sharing one
sweep.  The routing decision table lives in ``docs/serving.md``.

Replication and hedging: ``register(..., replicas=n)`` places read-only
copies of an instance on ``n`` distinct shards along a deterministic
rendezvous ring (:func:`placement_ring`); requests for a replicated
instance spread across the healthy ring members, fail over to replicas
while the primary's breaker is open or its worker is dark, and — under
a :class:`~repro.serving.resilience.HedgePolicy` — race a delayed
backup attempt on a second replica, first response winning and the
loser retired cooperatively through its
:class:`~repro.core.deadline.Deadline`.  Because every replica computes
the same content-determined floats, spread, failover, and hedging are
all bit-invisible in the responses.
"""

from __future__ import annotations

import hashlib
import os
import threading
from concurrent.futures import Future

from repro.core.deadline import Deadline
from repro.db.relation import Instance
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.engine import BRUTE_FORCE_LIMIT, COMPILATION_CACHE_LIMIT
from repro.queries.hqueries import HQuery
from repro.serving.api import AccuracyBudget, QueryRequest, QueryResponse
from repro.serving.faults import FaultInjector
from repro.serving.resilience import (
    CircuitBreaker,
    HedgePolicy,
    RetryPolicy,
    ServiceStopped,
    SupervisorPolicy,
)
from repro.serving.shard import Shard
from repro.serving.stats import (
    HedgeStats,
    ReplicationStats,
    ServiceStats,
    percentile,
)

#: Synthetic deadline horizon for hedged requests whose caller set no
#: deadline: far enough out to never expire on its own, finite so the
#: losing attempt can be retired by expiring it.
_HEDGE_HORIZON_MS = 1e9


def placement_ring(
    shard_key: int, num_shards: int, replicas: int
) -> tuple[int, ...]:
    """The deterministic replica placement for an instance: its primary
    shard (``shard_key % num_shards`` — unchanged from unreplicated
    routing) followed by the remaining shards in rendezvous order, the
    first ``replicas - 1`` of which hold the copies.

    Rendezvous (highest-random-weight) ordering — rank every non-primary
    shard by ``blake2b(shard_key : shard_index)`` — gives two properties
    worth having: distinct instances spread their replicas across
    *different* shard subsets (no shard pair becomes the designated
    replica home), and the ring for ``replicas = k`` is a prefix of the
    ring for ``k + 1``, so raising an instance's replication never moves
    its existing copies.  Pure function of its arguments; both routing
    processes and restarted services agree on it.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if replicas < 1:
        raise ValueError(f"replicas must be positive, got {replicas}")
    primary = shard_key % num_shards
    count = min(replicas, num_shards)
    if count == 1:
        return (primary,)

    def weight(index: int) -> bytes:
        payload = f"{shard_key:x}:{index:x}".encode("ascii")
        return hashlib.blake2b(payload, digest_size=8).digest()

    others = sorted(
        (index for index in range(num_shards) if index != primary),
        key=weight,
    )
    return (primary, *others[: count - 1])


class ShardedService:
    """A sharded, concurrent PQE query service.

    >>> from fractions import Fraction
    >>> from repro.db.generator import complete_tid
    >>> from repro.queries.hqueries import q9
    >>> with ShardedService(shards=2) as service:
    ...     tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
    ...     response = service.submit(q9(), tid).result()
    >>> response.engine
    'extensional'

    The service is a context manager; :meth:`close` drains the worker
    pools.

    ``backend`` selects the process model: ``"threads"`` (the default)
    keeps every shard in-process on a thread pool; ``"processes"`` gives
    every shard a dedicated worker process
    (:class:`~repro.serving.worker.ProcessShard`) fed through
    shared-memory probability columns — same interface, same floats, one
    core per shard instead of one GIL for all.  Leaving ``backend=None``
    reads the ``REPRO_SERVING_BACKEND`` environment variable (used by CI
    to run the whole serving suite against both backends), falling back
    to ``"threads"``.
    """

    def __init__(
        self,
        shards: int = 4,
        *,
        workers_per_shard: int = 2,
        cache_limit_per_shard: int = COMPILATION_CACHE_LIMIT,
        default_budget: AccuracyBudget | None = None,
        brute_force_limit: int = BRUTE_FORCE_LIMIT,
        latency_window: int = 4096,
        max_queue_depth: int = 4096,
        retry: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        degrade_to_sampling: bool = True,
        breaker_failure_threshold: int = 5,
        breaker_reset_after_ms: float = 1000.0,
        backend: str | None = None,
        hedge: HedgePolicy | None = None,
        supervisor: SupervisorPolicy | None = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if backend is None:
            backend = os.environ.get("REPRO_SERVING_BACKEND") or "threads"
        if backend not in ("threads", "processes"):
            raise ValueError(
                f"backend must be 'threads' or 'processes', got {backend!r}"
            )
        self.backend = backend
        self._registry = None
        extra_kwargs: dict = {}
        if backend == "processes":
            from repro.serving.shm import SegmentRegistry
            from repro.serving.worker import ProcessShard

            shard_type = ProcessShard
            # One content-addressed registry for the whole service:
            # replicas of an instance share probability segments instead
            # of republishing per shard.  The service owns its lifecycle
            # (unlinked in stop()/close() after every shard is down).
            self._registry = SegmentRegistry()
            extra_kwargs = {
                "registry": self._registry,
                "supervisor": supervisor,
            }
        else:
            shard_type = Shard
        budget = (
            default_budget if default_budget is not None else AccuracyBudget()
        )
        self._hedge = hedge if hedge is not None else HedgePolicy()
        self._state_lock = threading.Lock()
        self._placements: dict[int, tuple[int, ...]] = {}
        self._route_token = 0
        self._spread = 0
        self._failovers = 0
        self._hedges_launched = 0
        self._primary_wins = 0
        self._backup_wins = 0
        self._hedge_cancelled = 0
        self._failed_backups = 0
        self._shards = [
            shard_type(
                index,
                workers=workers_per_shard,
                cache_limit=cache_limit_per_shard,
                default_budget=budget,
                brute_force_limit=brute_force_limit,
                latency_window=latency_window,
                max_queue_depth=max_queue_depth,
                breaker=CircuitBreaker(
                    failure_threshold=breaker_failure_threshold,
                    reset_after_ms=breaker_reset_after_ms,
                ),
                retry=retry,
                fault_injector=fault_injector,
                degrade_to_sampling=degrade_to_sampling,
                **extra_kwargs,
            )
            for index in range(shards)
        ]

    # ------------------------------------------------------------------
    # Routing and registration
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shard_of(
        self, instance: Instance | TupleIndependentDatabase
    ) -> int:
        """The shard index owning the given instance — stable across
        processes (:meth:`~repro.db.relation.Instance.shard_key`), so a
        restarted service re-routes every instance to the same shard and
        its warmed caches stay meaningful."""
        if isinstance(instance, TupleIndependentDatabase):
            instance = instance.instance
        return instance.shard_key() % len(self._shards)

    def register(
        self,
        instance: Instance | TupleIndependentDatabase,
        replicas: int = 1,
    ) -> int:
        """Pin an instance to its shard ahead of traffic; returns the
        primary shard index.  ``submit`` registers implicitly — this is
        for warm-up and for observability (``ShardStats.instances``).

        ``replicas >= 2`` additionally places read-only copies on the
        next ``replicas - 1`` shards of the instance's
        :func:`placement_ring` (capped at the shard count).  Replicated
        instances get spread routing, failover, and hedging; an
        instance registered again with more replicas keeps its existing
        placements (the ring is prefix-stable) and gains the new ones.
        """
        if isinstance(instance, TupleIndependentDatabase):
            instance = instance.instance
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        key = instance.shard_key()
        ring = placement_ring(key, len(self._shards), replicas)
        fingerprint = instance.content_fingerprint()
        for index in ring:
            self._shards[index].register(fingerprint)
        with self._state_lock:
            existing = self._placements.get(key)
            if existing is None or len(ring) > len(existing):
                self._placements[key] = ring
        return ring[0]

    def unregister(
        self, instance: Instance | TupleIndependentDatabase
    ) -> None:
        """Drop an instance from the catalog: its placement entry and
        its fingerprint on every ring shard (idempotent).  In-flight
        requests for it complete normally — unregistration only stops
        the catalog from carrying the instance forward (the gateway's
        replace-on-re-register path, where leaving the old registration
        behind would leak a phantom ``ShardStats.instances`` entry per
        replacement, forever)."""
        if isinstance(instance, TupleIndependentDatabase):
            instance = instance.instance
        key = instance.shard_key()
        fingerprint = instance.content_fingerprint()
        with self._state_lock:
            ring = self._placements.pop(key, (key % len(self._shards),))
        for index in ring:
            self._shards[index].unregister(fingerprint)

    def placement_of(
        self, instance: Instance | TupleIndependentDatabase
    ) -> tuple[int, ...]:
        """The shard indexes holding this instance, primary first (a
        one-element tuple for unreplicated instances)."""
        if isinstance(instance, TupleIndependentDatabase):
            instance = instance.instance
        key = instance.shard_key()
        with self._state_lock:
            return self._placements.get(key, (key % len(self._shards),))

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        query: HQuery,
        tid: TupleIndependentDatabase,
        budget: AccuracyBudget | None = None,
        *,
        deadline_ms: float | None = None,
        priority: int = 0,
    ) -> Future:
        """Enqueue one evaluation; returns a future resolving to a
        :class:`~repro.serving.api.QueryResponse` or raising a typed
        resilience error (see :meth:`Shard.submit
        <repro.serving.shard.Shard.submit>`).  Same-``(query,
        instance)`` requests in flight are microbatched into one
        compiled-tape sweep on the owning shard.  ``deadline_ms`` and
        ``priority`` opt the request into the resilience layer's
        deadline enforcement and shed ordering (see
        :class:`~repro.serving.api.QueryRequest`).

        Replicated instances (``register(..., replicas=n)``) route
        across their healthy ring members: load spreads
        deterministically, an unhealthy primary (breaker open, worker
        dark, stopped) fails over to a replica instead of rejecting,
        and — when the service's
        :class:`~repro.serving.resilience.HedgePolicy` is enabled and a
        second healthy replica exists — a delayed backup attempt races
        the primary, first response winning."""
        request = QueryRequest(
            query, tid, budget, deadline_ms=deadline_ms, priority=priority
        )
        return self._route(request)

    def _route(self, request: QueryRequest) -> Future:
        key = request.tid.instance.shard_key()
        primary = key % len(self._shards)
        with self._state_lock:
            ring = self._placements.get(key, (primary,))
            token = self._route_token
            self._route_token += 1
        if len(ring) == 1:
            return self._shards[primary].submit(request)
        healthy = [
            index for index in ring if self._shards[index].healthy()
        ]
        if not healthy:
            # Nobody left to fail over to: the primary's typed
            # rejection (breaker open / stopped) is the honest answer.
            return self._shards[primary].submit(request)
        chosen = healthy[token % len(healthy)]
        if chosen != primary:
            with self._state_lock:
                if primary in healthy:
                    self._spread += 1
                else:
                    self._failovers += 1
        if self._hedge.enabled and len(healthy) > 1:
            race = _HedgeRace(self, request, token, ring, chosen)
            try:
                return race.start()
            except ServiceStopped:
                healthy = [index for index in healthy if index != chosen]
        return self._submit_direct(
            [chosen, *[i for i in healthy if i != chosen]], request
        )

    def _submit_direct(
        self, candidates: list[int], request: QueryRequest
    ) -> Future:
        """Submit to the first candidate shard that accepts (a shard may
        stop between the health check and the submit)."""
        last_error: BaseException | None = None
        for index in candidates:
            try:
                return self._shards[index].submit(request)
            except ServiceStopped as error:
                last_error = error
        assert last_error is not None
        raise last_error

    def _hedge_delay_ms(self, shard: Shard, request: QueryRequest,
                        token: int) -> float:
        route = shard.route_for(request)
        quantile = shard.route_quantile_ms(route, self._hedge.quantile_z)
        return self._hedge.delay_ms(token, quantile)

    def _count_hedge(self, **deltas: int) -> None:
        with self._state_lock:
            self._hedges_launched += deltas.get("launched", 0)
            self._primary_wins += deltas.get("primary_wins", 0)
            self._backup_wins += deltas.get("backup_wins", 0)
            self._hedge_cancelled += deltas.get("cancelled", 0)
            self._failed_backups += deltas.get("failed_backups", 0)

    def submit_batch(
        self,
        query: HQuery,
        tids: list[TupleIndependentDatabase],
        budget: AccuracyBudget | None = None,
    ) -> list[QueryResponse]:
        """Evaluate one query over many TIDs, in input order.

        Requests fan out to their owning shards, group into microbatches
        per ``(query, instance fingerprint)``, and the call blocks until
        every response is in — the synchronous convenience over
        :meth:`submit` for sweep/update workloads.  Probabilities are
        bit-for-float identical to a single-threaded
        :func:`repro.pqe.engine.evaluate_batch` over the same TIDs.
        """
        futures = [self.submit(query, tid, budget) for tid in tids]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Observability and lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A service-wide snapshot; latency percentiles are computed over
        the union of the shards' windows."""
        shard_stats = tuple(shard.stats() for shard in self._shards)
        latencies: list[float] = []
        for shard in self._shards:
            latencies.extend(shard.latency_snapshot())
        with self._state_lock:
            replication = ReplicationStats(
                replicated_instances=sum(
                    1
                    for ring in self._placements.values()
                    if len(ring) > 1
                ),
                replicas_placed=sum(
                    len(ring) - 1 for ring in self._placements.values()
                ),
                spread=self._spread,
                failovers=self._failovers,
            )
            hedging = HedgeStats(
                launched=self._hedges_launched,
                primary_wins=self._primary_wins,
                backup_wins=self._backup_wins,
                cancelled=self._hedge_cancelled,
                failed_backups=self._failed_backups,
            )
        return ServiceStats(
            shards=shard_stats,
            requests=sum(s.requests for s in shard_stats),
            batches=sum(s.batches for s in shard_stats),
            microbatched_requests=sum(
                s.microbatched_requests for s in shard_stats
            ),
            queue_depth=sum(s.queue_depth for s in shard_stats),
            compile_ms=sum(s.compile_ms for s in shard_stats),
            p50_ms=percentile(latencies, 0.50),
            p95_ms=percentile(latencies, 0.95),
            replication=replication,
            hedging=hedging,
        )

    def close(self, wait: bool = True) -> None:
        """Shut every shard's worker pool down gracefully (idempotent);
        queued work drains first."""
        for shard in self._shards:
            shard.close(wait=wait)
        if self._registry is not None:
            self._registry.unlink_all()

    def stop(self, wait: bool = True) -> None:
        """Stop serving now (idempotent): every still-queued request on
        every shard is resolved with a typed
        :class:`~repro.serving.resilience.ServiceStopped` — no caller
        blocks forever on a stopped service — and later submits raise
        it."""
        for shard in self._shards:
            shard.stop(wait=wait)
        if self._registry is not None:
            self._registry.unlink_all()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _HedgeRace:
    """A first-response-wins race for one replicated request.

    The primary attempt is submitted immediately with a live
    :class:`~repro.core.deadline.Deadline` handle; a daemon timer fires
    after the policy's deterministic delay and submits one backup to a
    different healthy, accepting ring member (breaker-open, dark, and
    queue-full shards are skipped, so hedging composes with admission
    control instead of fighting it).  The first attempt to *succeed*
    resolves the caller's future; the loser is retired cooperatively —
    its deadline is expired (so queued work is dropped at the next
    cooperative check) and its future cancelled (dropped at drain-claim
    if not yet running).  If the primary fails typed before the timer
    fires, the backup fires immediately; if every attempt fails, the
    caller sees the primary's error.  Which attempt wins never changes
    the float: replicas compute content-determined, bit-identical
    probabilities.
    """

    def __init__(
        self,
        service: ShardedService,
        request: QueryRequest,
        token: int,
        ring: tuple[int, ...],
        primary_index: int,
    ):
        self._service = service
        self._request = request
        self._token = token
        self._ring = ring
        self._primary_index = primary_index
        self._outer: Future = Future()
        self._lock = threading.Lock()
        # (shard index, inner future, deadline handle) per attempt.
        self._entries: list[tuple[int, Future, Deadline]] = []
        self._errors: list[BaseException] = []
        self._done = False
        self._may_hedge = True
        self._timer: threading.Timer | None = None

    def start(self) -> Future:
        deadline = Deadline(
            self._request.deadline_ms
            if self._request.deadline_ms is not None
            else _HEDGE_HORIZON_MS
        )
        shard = self._service._shards[self._primary_index]
        future = shard.submit(self._request, deadline=deadline)
        self._entries.append((self._primary_index, future, deadline))
        delay_ms = self._service._hedge_delay_ms(
            shard, self._request, self._token
        )
        timer = threading.Timer(delay_ms / 1e3, self._fire_backup)
        timer.daemon = True
        self._timer = timer
        timer.start()
        future.add_done_callback(self._callback(0))
        return self._outer

    def _callback(self, slot: int):
        return lambda future: self._on_done(slot, future)

    def _fire_backup(self) -> None:
        with self._lock:
            if self._done or not self._may_hedge:
                return
            self._may_hedge = False
            used = {index for index, _, _ in self._entries}
            remaining_ms = self._entries[0][2].remaining_ms()
        service = self._service
        candidates = [
            index
            for index in self._ring
            if index not in used and service._shards[index].accepting()
        ]
        if not candidates or remaining_ms <= 0:
            self._settle_if_all_failed()
            return
        backup_index = candidates[self._token % len(candidates)]
        # The backup runs under the primary's *remaining* time — the
        # caller's deadline budget started at the original submit.
        deadline = Deadline(remaining_ms)
        try:
            future = service._shards[backup_index].submit(
                self._request, deadline=deadline
            )
        except ServiceStopped:
            service._count_hedge(failed_backups=1)
            self._settle_if_all_failed()
            return
        service._count_hedge(launched=1)
        with self._lock:
            if self._done:
                # The primary resolved while we were submitting: retire
                # the just-launched backup straight away.
                deadline.expire()
                if future.cancel():
                    service._count_hedge(cancelled=1)
                return
            slot = len(self._entries)
            self._entries.append((backup_index, future, deadline))
        future.add_done_callback(self._callback(slot))

    def _on_done(self, slot: int, future: Future) -> None:
        if future.cancelled():
            return
        error = future.exception()
        if error is None:
            self._win(slot, future.result())
            return
        fire_now = False
        with self._lock:
            if self._done:
                return
            self._errors.append(error)
            fire_now = self._may_hedge
        if fire_now:
            # The primary failed before the hedge delay elapsed: there
            # is nothing to wait for — fire the backup immediately.
            if self._timer is not None:
                self._timer.cancel()
            self._fire_backup()
        else:
            self._settle_if_all_failed()

    def _settle_if_all_failed(self) -> None:
        with self._lock:
            if (
                self._done
                or self._may_hedge
                or len(self._errors) < len(self._entries)
            ):
                return
            self._done = True
            error = self._errors[0]
        if self._outer.set_running_or_notify_cancel():
            self._outer.set_exception(error)

    def _win(self, slot: int, response: QueryResponse) -> None:
        with self._lock:
            if self._done:
                return
            self._done = True
            losers = [
                entry
                for position, entry in enumerate(self._entries)
                if position != slot
            ]
        if self._timer is not None:
            self._timer.cancel()
        cancelled = 0
        for _, future, deadline in losers:
            deadline.expire()
            if future.cancel():
                cancelled += 1
        self._service._count_hedge(
            primary_wins=1 if slot == 0 else 0,
            backup_wins=0 if slot == 0 else 1,
            cancelled=cancelled,
        )
        if self._outer.set_running_or_notify_cancel():
            self._outer.set_result(response)

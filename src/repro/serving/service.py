"""The front end of the sharded PQE service.

:class:`ShardedService` turns :mod:`repro.pqe.engine` into a concurrent,
multi-tenant query service: registered instances are partitioned across
``N`` shards by a process-stable digest of their
:meth:`~repro.db.relation.Instance.content_fingerprint`, each shard owns
its compilation cache / workers / stats, and the ``submit`` /
``submit_batch`` API microbatches same-work requests into single
vectorized sweeps.  Routing follows the Figure-1 dichotomy per request:
safe monotone (H+) queries run *extensionally* — lifted plans over
columnar probability views, no lineage or circuit at all; the remaining
d-D(PTIME) queries compile through the shard cache and run batched tape
sweeps; hard queries fall back to exact enumeration when the instance
is small, and to the vectorized budget-adaptive Karp–Luby (UCQ) or
Monte-Carlo (non-monotone) sampling sweeps of
:mod:`repro.pqe.approximate` under a per-request
:class:`~repro.pqe.approximate.AccuracyBudget` otherwise — with
same-budget same-probability requests in a microbatch sharing one
sweep.  The routing decision table lives in ``docs/serving.md``.
"""

from __future__ import annotations

import os
from concurrent.futures import Future

from repro.db.relation import Instance
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.engine import BRUTE_FORCE_LIMIT, COMPILATION_CACHE_LIMIT
from repro.queries.hqueries import HQuery
from repro.serving.api import AccuracyBudget, QueryRequest, QueryResponse
from repro.serving.faults import FaultInjector
from repro.serving.resilience import CircuitBreaker, RetryPolicy
from repro.serving.shard import Shard
from repro.serving.stats import ServiceStats, percentile


class ShardedService:
    """A sharded, concurrent PQE query service.

    >>> from fractions import Fraction
    >>> from repro.db.generator import complete_tid
    >>> from repro.queries.hqueries import q9
    >>> with ShardedService(shards=2) as service:
    ...     tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
    ...     response = service.submit(q9(), tid).result()
    >>> response.engine
    'extensional'

    The service is a context manager; :meth:`close` drains the worker
    pools.

    ``backend`` selects the process model: ``"threads"`` (the default)
    keeps every shard in-process on a thread pool; ``"processes"`` gives
    every shard a dedicated worker process
    (:class:`~repro.serving.worker.ProcessShard`) fed through
    shared-memory probability columns — same interface, same floats, one
    core per shard instead of one GIL for all.  Leaving ``backend=None``
    reads the ``REPRO_SERVING_BACKEND`` environment variable (used by CI
    to run the whole serving suite against both backends), falling back
    to ``"threads"``.
    """

    def __init__(
        self,
        shards: int = 4,
        *,
        workers_per_shard: int = 2,
        cache_limit_per_shard: int = COMPILATION_CACHE_LIMIT,
        default_budget: AccuracyBudget | None = None,
        brute_force_limit: int = BRUTE_FORCE_LIMIT,
        latency_window: int = 4096,
        max_queue_depth: int = 4096,
        retry: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        degrade_to_sampling: bool = True,
        breaker_failure_threshold: int = 5,
        breaker_reset_after_ms: float = 1000.0,
        backend: str | None = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if backend is None:
            backend = os.environ.get("REPRO_SERVING_BACKEND") or "threads"
        if backend not in ("threads", "processes"):
            raise ValueError(
                f"backend must be 'threads' or 'processes', got {backend!r}"
            )
        self.backend = backend
        if backend == "processes":
            from repro.serving.worker import ProcessShard

            shard_type = ProcessShard
        else:
            shard_type = Shard
        budget = (
            default_budget if default_budget is not None else AccuracyBudget()
        )
        self._shards = [
            shard_type(
                index,
                workers=workers_per_shard,
                cache_limit=cache_limit_per_shard,
                default_budget=budget,
                brute_force_limit=brute_force_limit,
                latency_window=latency_window,
                max_queue_depth=max_queue_depth,
                breaker=CircuitBreaker(
                    failure_threshold=breaker_failure_threshold,
                    reset_after_ms=breaker_reset_after_ms,
                ),
                retry=retry,
                fault_injector=fault_injector,
                degrade_to_sampling=degrade_to_sampling,
            )
            for index in range(shards)
        ]

    # ------------------------------------------------------------------
    # Routing and registration
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shard_of(
        self, instance: Instance | TupleIndependentDatabase
    ) -> int:
        """The shard index owning the given instance — stable across
        processes (:meth:`~repro.db.relation.Instance.shard_key`), so a
        restarted service re-routes every instance to the same shard and
        its warmed caches stay meaningful."""
        if isinstance(instance, TupleIndependentDatabase):
            instance = instance.instance
        return instance.shard_key() % len(self._shards)

    def register(
        self, instance: Instance | TupleIndependentDatabase
    ) -> int:
        """Pin an instance to its shard ahead of traffic; returns the
        shard index.  ``submit`` registers implicitly — this is for
        warm-up and for observability (``ShardStats.instances``)."""
        if isinstance(instance, TupleIndependentDatabase):
            instance = instance.instance
        index = self.shard_of(instance)
        self._shards[index].register(instance.content_fingerprint())
        return index

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        query: HQuery,
        tid: TupleIndependentDatabase,
        budget: AccuracyBudget | None = None,
        *,
        deadline_ms: float | None = None,
        priority: int = 0,
    ) -> Future:
        """Enqueue one evaluation; returns a future resolving to a
        :class:`~repro.serving.api.QueryResponse` or raising a typed
        resilience error (see :meth:`Shard.submit
        <repro.serving.shard.Shard.submit>`).  Same-``(query,
        instance)`` requests in flight are microbatched into one
        compiled-tape sweep on the owning shard.  ``deadline_ms`` and
        ``priority`` opt the request into the resilience layer's
        deadline enforcement and shed ordering (see
        :class:`~repro.serving.api.QueryRequest`)."""
        index = self.shard_of(tid)
        return self._shards[index].submit(
            QueryRequest(
                query, tid, budget, deadline_ms=deadline_ms,
                priority=priority,
            )
        )

    def submit_batch(
        self,
        query: HQuery,
        tids: list[TupleIndependentDatabase],
        budget: AccuracyBudget | None = None,
    ) -> list[QueryResponse]:
        """Evaluate one query over many TIDs, in input order.

        Requests fan out to their owning shards, group into microbatches
        per ``(query, instance fingerprint)``, and the call blocks until
        every response is in — the synchronous convenience over
        :meth:`submit` for sweep/update workloads.  Probabilities are
        bit-for-float identical to a single-threaded
        :func:`repro.pqe.engine.evaluate_batch` over the same TIDs.
        """
        futures = [self.submit(query, tid, budget) for tid in tids]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Observability and lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A service-wide snapshot; latency percentiles are computed over
        the union of the shards' windows."""
        shard_stats = tuple(shard.stats() for shard in self._shards)
        latencies: list[float] = []
        for shard in self._shards:
            latencies.extend(shard.latency_snapshot())
        return ServiceStats(
            shards=shard_stats,
            requests=sum(s.requests for s in shard_stats),
            batches=sum(s.batches for s in shard_stats),
            microbatched_requests=sum(
                s.microbatched_requests for s in shard_stats
            ),
            queue_depth=sum(s.queue_depth for s in shard_stats),
            compile_ms=sum(s.compile_ms for s in shard_stats),
            p50_ms=percentile(latencies, 0.50),
            p95_ms=percentile(latencies, 0.95),
        )

    def close(self, wait: bool = True) -> None:
        """Shut every shard's worker pool down gracefully (idempotent);
        queued work drains first."""
        for shard in self._shards:
            shard.close(wait=wait)

    def stop(self, wait: bool = True) -> None:
        """Stop serving now (idempotent): every still-queued request on
        every shard is resolved with a typed
        :class:`~repro.serving.resilience.ServiceStopped` — no caller
        blocks forever on a stopped service — and later submits raise
        it."""
        for shard in self._shards:
            shard.stop(wait=wait)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

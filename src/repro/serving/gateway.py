"""The asyncio gateway: a durable, drainable JSON-lines edge over a
ShardedService.

Pure stdlib (``asyncio.start_server``): clients speak newline-delimited
JSON objects and get one JSON object back per request, correlated by the
caller-chosen ``id``.  The gateway is a thin *policy* front — it parses,
enforces per-tenant quotas, connection caps and gateway-wide
backpressure, and routes into the
:class:`~repro.serving.service.ShardedService` behind it (either
backend); every deeper policy — deadlines, priorities, shedding,
breakers, retries, degradation — is PR 6's resilience layer inside the
shards, reused rather than reinvented here.  A rejected or failed
request is answered with the *typed* error name on the wire
(``DeadlineExceeded``, ``ShardOverloaded``, ``CircuitBreakerOpen``,
``TenantQuotaExceeded``, ``GatewayDraining``, ``LineTooLong``, ...),
mirroring the future-based API.

Protocol (one JSON object per line; ``id`` is echoed back)::

    {"op": "ping", "id": 0}
    {"op": "register", "id": 1, "instance": "orders",
     "facts": [["R", [1], [1, 2]], ["S1", [1, 2]], ["T", [2], [2, 3]]],
     "replicas": 2}                               # optional
    {"op": "query", "id": 2, "instance": "orders",
     "query": {"k": 1, "nvars": 2, "table": 8},
     "budget": {"epsilon": 0.05, "seed": 7},     # optional
     "deadline_ms": 50.0, "priority": 1,          # optional
     "tenant": "acme",                            # optional
     "idempotency_key": "req-7f3a"}               # optional
    {"op": "stats", "id": 3}

Replies are ``{"id": ..., "ok": true, ...}`` or ``{"id": ..., "ok":
false, "error": "<TypeName>", "message": "..."}``.  A ``register`` fact
is ``[relation, values]`` or ``[relation, values, [numerator,
denominator]]`` — probabilities are exact rationals on the wire (never
floats), defaulting to 1.  Queries travel as their complete content,
the same discipline the process backend uses across its pipe: an
h-query as ``{"k": ..., "nvars": ..., "table": ...}``, a general
UCQ/CQ for the lifted route as ``{"ucq": [[[rel, [term, ...]], ...],
...]}`` — a list of disjuncts, each a list of ``[relation, terms]``
atoms, where a term is a variable name string or ``{"const": value}``
for a constant.

**Durability** (``journal_path=``): every effective ``register`` is
appended to a checksummed
:class:`~repro.serving.journal.RegistrationJournal` *before* it is
acknowledged, and :meth:`Gateway.start` replays the journal into the
catalog — a crashed-and-restarted gateway re-registers every instance
with the same facts and exact-rational probabilities, hence the same
``shard_key`` and the same prefix-stable ``placement_ring``: recovery
is bit-invisible in every answer.  Re-registering an existing name with
*identical* content is idempotent (the warm catalog entry is kept; only
a ``replicas`` raise is journaled); re-registering with *different*
content **replaces atomically** — the old TID's service registration is
released (unless another name still serves the same content) before the
new one lands, so replacement never leaks phantom catalog entries, and
journal compaction keeps only the latest record per name.

**Drain** (:meth:`Gateway.drain`): stop accepting connections, answer
new queries and registers with a typed ``GatewayDraining``, let
in-flight requests finish under their own deadlines for ``grace_ms``,
then close.  Returns ``True`` when the grace window emptied the gateway
— zero in-flight requests were cancelled.  Per-connection
``idle_timeout_s`` (slow-loris defense) and a ``max_connections`` cap
with a typed ``TooManyConnections`` rejection bound what drain ever has
to wait for.

**Idempotent retries**: a query carrying an ``idempotency_key`` is
remembered under ``(tenant, key)`` in a bounded LRU response journal.
A retry while the original is still in flight *joins* the same
execution (no duplicate submission — and for sampled routes, no second
draw-stream sweep, so the retried answer is the bit-identical float the
first attempt computed); a retry after completion replays the recorded
reply verbatim, answer or typed error.  Only *admitted* requests are
recorded: quota/overload/draining rejections are not, so a retry after
backpressure clears can succeed.

**Network chaos**: an optional
:class:`~repro.serving.faults.FaultInjector` drives the seeded
``conn_drop`` (abort mid-reply), ``partial_write`` (split frames) and
``slow_client`` (delayed replies) lanes, keyed per ``(connection,
reply index)`` — the gateway edge's analogue of the worker tier's
``worker_kill``/``straggler_latency`` lanes, replayable across runs
and backends.

``Gateway`` is the asyncio object (``await start()`` / ``await
stop()``); :class:`GatewayServer` wraps it in a background thread with
its own event loop for synchronous callers and tests, and adds
:meth:`GatewayServer.restart` — graceful (drain first; loses zero
accepted requests) or crash-equivalent (``graceful=False``; the journal
is the only survivor, which is the point).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from collections import OrderedDict
from fractions import Fraction

from repro.core.boolean_function import BooleanFunction
from repro.db.relation import Instance
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.approximate import AccuracyBudget
from repro.queries.cq import Atom, ConjunctiveQuery, Constant
from repro.queries.hqueries import HQuery
from repro.queries.ucq import UnionOfCQs
from repro.serving.faults import FaultInjector
from repro.serving.journal import JournalStats, RegistrationJournal
from repro.serving.service import ShardedService
from repro.serving.stats import GatewayStats, IdempotencyStats

#: register/query lines may carry whole instances; the default 64 KiB
#: readline limit is too small for that.
_LINE_LIMIT = 1 << 22


class GatewayOverloaded(RuntimeError):
    """The gateway-wide in-flight bound is exhausted."""


class TenantQuotaExceeded(RuntimeError):
    """The requesting tenant's in-flight quota is exhausted."""


class GatewayDraining(RuntimeError):
    """The gateway is draining for shutdown/restart: it finishes what
    it already accepted but takes nothing new.  Retry against the
    restarted gateway (idempotency keys make that safe)."""


class LineTooLong(RuntimeError):
    """A request line exceeded the gateway's line limit.  The reply is
    the last one on this connection — framing is unrecoverable past an
    oversized line, so the gateway closes after answering."""


class TooManyConnections(RuntimeError):
    """The gateway is at its ``max_connections`` cap."""


class IdleTimeout(RuntimeError):
    """The connection sat idle past ``idle_timeout_s`` and was closed
    (slow-loris defense)."""


def _same_content(a, b) -> bool:
    """Whether two TIDs are the same *probabilistic* content: same
    facts (instance fingerprint) and the same exact-rational
    probability on every fact.  The service's placement identity is
    facts-only (probabilities never move a shard), but the gateway's
    replace-vs-idempotent decision must see probability changes — they
    change every answer."""
    fingerprint = a.instance.content_fingerprint()
    if fingerprint != b.instance.content_fingerprint():
        return False
    return all(
        a.probability_of(t) == b.probability_of(t) for t in fingerprint
    )


def _decode_values(values) -> tuple:
    """JSON arrays arrive as lists; facts are hashable tuples."""
    return tuple(
        _decode_values(value) if isinstance(value, list) else value
        for value in values
    )


def _decode_budget(payload: dict) -> AccuracyBudget:
    allowed = {
        "epsilon",
        "min_samples",
        "max_samples",
        "seed",
        "adaptive",
        "interval",
        "delta",
    }
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(f"unknown budget fields: {sorted(unknown)}")
    return AccuracyBudget(**payload)


def _decode_term(term):
    """A wire term: a variable name string, or ``{"const": v}``."""
    if isinstance(term, str):
        return term
    if isinstance(term, dict) and set(term) == {"const"}:
        value = term["const"]
        return Constant(
            _decode_values(value) if isinstance(value, list) else value
        )
    raise ValueError(f"bad query term on the wire: {term!r}")


def _decode_cq(atoms) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        tuple(
            Atom(relation, tuple(_decode_term(t) for t in terms))
            for relation, terms in atoms
        )
    )


def _decode_query(payload: dict) -> HQuery | UnionOfCQs:
    if "ucq" in payload:
        return UnionOfCQs(
            tuple(_decode_cq(atoms) for atoms in payload["ucq"])
        )
    return HQuery(
        payload["k"],
        BooleanFunction(payload["nvars"], payload["table"]),
    )


class Gateway:
    """One asyncio JSON-lines gateway over a :class:`ShardedService`."""

    def __init__(
        self,
        service: ShardedService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 1024,
        default_tenant_quota: int = 64,
        tenant_quotas: dict[str, int] | None = None,
        journal_path=None,
        journal_fsync: str = "always",
        journal_auto_compact_dead: int | None = None,
        max_connections: int | None = None,
        idle_timeout_s: float | None = None,
        idempotency_capacity: int = 1024,
        fault_injector: FaultInjector | None = None,
    ):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if default_tenant_quota < 1:
            raise ValueError(
                f"default_tenant_quota must be positive, "
                f"got {default_tenant_quota}"
            )
        if max_connections is not None and max_connections < 1:
            raise ValueError(
                f"max_connections must be positive or None, "
                f"got {max_connections}"
            )
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValueError(
                f"idle_timeout_s must be positive or None, "
                f"got {idle_timeout_s}"
            )
        if idempotency_capacity < 1:
            raise ValueError(
                f"idempotency_capacity must be positive, "
                f"got {idempotency_capacity}"
            )
        self.service = service
        self._host = host
        self._port = port
        self.max_inflight = max_inflight
        self.default_tenant_quota = default_tenant_quota
        self.tenant_quotas = dict(tenant_quotas or {})
        self.max_connections = max_connections
        self.idle_timeout_s = idle_timeout_s
        self.idempotency_capacity = idempotency_capacity
        self._fault_injector = fault_injector
        self._journal = (
            RegistrationJournal(
                journal_path,
                fsync=journal_fsync,
                auto_compact_dead=journal_auto_compact_dead,
            )
            if journal_path is not None
            else None
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._tids: dict[str, TupleIndependentDatabase] = {}
        self._replicas: dict[str, int] = {}
        self._inflight = 0
        self._tenant_inflight: dict[str, int] = {}
        self._busy = 0  #: handlers between reading a line and the reply
        self._idle: asyncio.Event | None = None
        self._draining = False
        self._replayed = False
        self._conn_counter = 0
        #: (tenant, key) -> completed reply body (dict) or the in-flight
        #: execution task (asyncio.Future); bounded LRU.
        self._idempotency: OrderedDict = OrderedDict()
        self._connections_total = 0
        self._rejected_connections = 0
        self._idle_timeouts = 0
        self._line_too_long = 0
        self._requests = 0
        self._draining_rejections = 0
        self._overloaded_rejections = 0
        self._quota_rejections = 0
        self._replayed_instances = 0
        self._idem_hits = 0
        self._idem_joins = 0
        self._idem_evictions = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`; 0 requests an ephemeral
        one)."""
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Replay the registration journal (first start only), then
        open the listener.  Replay happens *before* the first accept,
        so no client can observe a partially recovered catalog."""
        if self._journal is not None and not self._replayed:
            for record in self._journal.replay():
                self._apply_register(record)
                self._replayed_instances += 1
            self._replayed = True
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=_LINE_LIMIT,
        )

    async def drain(self, grace_ms: float = 5000.0) -> bool:
        """Graceful shutdown ladder: close the listener, answer new
        queries/registers with typed ``GatewayDraining``, wait up to
        ``grace_ms`` for in-flight requests to finish under their own
        deadlines, then close every connection.  Returns ``True`` iff
        the gateway emptied within the grace window — i.e. zero
        in-flight requests were cancelled."""
        if grace_ms < 0:
            raise ValueError(f"grace_ms must be >= 0, got {grace_ms}")
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        clean = True
        if self._idle is not None:
            self._check_idle()
            # Short-circuit an already-idle gateway: ``wait_for(..., 0)``
            # times out even on a set event, and an expired grace budget
            # must not turn an empty drain into a dirty one.
            if not self._idle.is_set():
                try:
                    await asyncio.wait_for(
                        self._idle.wait(), grace_ms / 1e3
                    )
                except (TimeoutError, asyncio.TimeoutError):
                    clean = False
        await self.stop()
        return clean

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Open connections outlive the listener: cancel their handler
        # tasks so a stopped gateway leaves no task pending on the loop.
        connections = list(self._connections)
        for task in connections:
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        if self._journal is not None:
            self._journal.close()

    # -- bookkeeping ---------------------------------------------------

    def _check_idle(self) -> None:
        if self._idle is None:
            return
        if self._busy == 0 and self._inflight == 0:
            self._idle.set()
        else:
            self._idle.clear()

    def _idem_get(self, key: tuple):
        entry = self._idempotency.get(key)
        if entry is not None:
            self._idempotency.move_to_end(key)
        return entry

    def _idem_put(self, key: tuple, value) -> None:
        self._idempotency[key] = value
        self._idempotency.move_to_end(key)
        while len(self._idempotency) > self.idempotency_capacity:
            self._idempotency.popitem(last=False)
            self._idem_evictions += 1

    def gateway_stats(self) -> GatewayStats:
        """This gateway's edge counters (see
        :class:`~repro.serving.stats.GatewayStats`)."""
        journal = (
            self._journal.stats()
            if self._journal is not None
            else JournalStats()
        )
        injected = (
            self._fault_injector.stats()
            if self._fault_injector is not None
            else {}
        )
        return GatewayStats(
            connections=self._connections_total,
            active_connections=len(self._connections),
            rejected_connections=self._rejected_connections,
            idle_timeouts=self._idle_timeouts,
            line_too_long=self._line_too_long,
            requests=self._requests,
            draining_rejections=self._draining_rejections,
            overloaded_rejections=self._overloaded_rejections,
            quota_rejections=self._quota_rejections,
            replayed_instances=self._replayed_instances,
            journal=journal,
            idempotency=IdempotencyStats(
                hits=self._idem_hits,
                joins=self._idem_joins,
                entries=len(self._idempotency),
                evictions=self._idem_evictions,
            ),
            injected_conn_drops=injected.get("conn_drops", 0),
            injected_partial_writes=injected.get("partial_writes", 0),
            injected_slow_client_events=injected.get(
                "slow_client_events", 0
            ),
        )

    # -- connection handling -------------------------------------------

    @staticmethod
    def _error_reply(error: BaseException, message_id=None) -> dict:
        return {
            "id": message_id,
            "ok": False,
            "error": type(error).__name__,
            "message": str(error),
        }

    async def _reject_connection(
        self, writer: asyncio.StreamWriter, error: BaseException
    ) -> None:
        """Best-effort typed rejection before closing a connection the
        gateway will not serve."""
        with contextlib.suppress(ConnectionError):
            writer.write(
                json.dumps(self._error_reply(error)).encode() + b"\n"
            )
            await writer.drain()
        writer.close()
        with contextlib.suppress(ConnectionError, asyncio.CancelledError):
            await writer.wait_closed()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            # Accepted in the window before the listener closed.
            self._rejected_connections += 1
            await self._reject_connection(
                writer, GatewayDraining("gateway is draining")
            )
            return
        if (
            self.max_connections is not None
            and len(self._connections) >= self.max_connections
        ):
            self._rejected_connections += 1
            await self._reject_connection(
                writer,
                TooManyConnections(
                    f"gateway at max_connections={self.max_connections}"
                ),
            )
            return
        conn_id = self._conn_counter
        self._conn_counter += 1
        self._connections_total += 1
        reply_index = 0
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    if self.idle_timeout_s is not None:
                        line = await asyncio.wait_for(
                            reader.readline(), self.idle_timeout_s
                        )
                    else:
                        line = await reader.readline()
                except (TimeoutError, asyncio.TimeoutError):
                    self._idle_timeouts += 1
                    with contextlib.suppress(ConnectionError):
                        writer.write(
                            json.dumps(
                                self._error_reply(
                                    IdleTimeout(
                                        f"no request within "
                                        f"{self.idle_timeout_s}s"
                                    )
                                )
                            ).encode()
                            + b"\n"
                        )
                        await writer.drain()
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized line: answer typed, then close — framing
                    # cannot be trusted past an overrun.
                    self._line_too_long += 1
                    with contextlib.suppress(ConnectionError):
                        writer.write(
                            json.dumps(
                                self._error_reply(
                                    LineTooLong(
                                        f"request line exceeded "
                                        f"{_LINE_LIMIT} bytes"
                                    )
                                )
                            ).encode()
                            + b"\n"
                        )
                        await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self._busy += 1
                self._check_idle()
                try:
                    reply = await self._serve_line(line)
                    delivered = await self._write_reply(
                        writer, reply, conn_id, reply_index
                    )
                finally:
                    self._busy -= 1
                    self._check_idle()
                reply_index += 1
                if not delivered:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-reply; nothing to clean up
        except asyncio.CancelledError:
            # Gateway stopping: end this handler *cleanly* rather than
            # propagating — 3.11's stream protocol calls
            # ``task.exception()`` on the done handler task, which would
            # re-raise the cancellation into the event loop's logger.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    async def _write_reply(
        self,
        writer: asyncio.StreamWriter,
        reply: dict,
        conn_id: int,
        reply_index: int,
    ) -> bool:
        """Write one reply frame, applying the seeded network chaos
        lanes; returns ``False`` when the connection was (deliberately)
        destroyed mid-reply."""
        data = json.dumps(reply).encode() + b"\n"
        injector = self._fault_injector
        if injector is not None:
            delay_ms = injector.slow_client_ms_for(conn_id, reply_index)
            if delay_ms > 0:
                await asyncio.sleep(delay_ms / 1e3)
            if injector.should_drop_conn(conn_id, reply_index):
                # Half a frame, then a hard abort: the client sees a
                # torn reply and a dead connection — the retry path.
                writer.write(data[: max(1, len(data) // 2)])
                with contextlib.suppress(ConnectionError):
                    await writer.drain()
                writer.transport.abort()
                return False
            if injector.should_split_write(conn_id, reply_index):
                half = max(1, len(data) // 2)
                writer.write(data[:half])
                await writer.drain()
                writer.write(data[half:])
                await writer.drain()
                return True
        writer.write(data)
        await writer.drain()
        return True

    async def _serve_line(self, line: bytes) -> dict:
        message_id = None
        try:
            message = json.loads(line)
            if not isinstance(message, dict):
                raise ValueError("each line must be a JSON object")
            message_id = message.get("id")
            op = message.get("op")
            if op == "ping":
                return {"id": message_id, "ok": True, "pong": True}
            if op == "register":
                return await self._serve_register(message)
            if op == "query":
                return await self._serve_query(message)
            if op == "stats":
                return await self._serve_stats(message)
            raise ValueError(f"unknown op {op!r}")
        except asyncio.CancelledError:
            # The gateway is stopping and cancelled this handler: the
            # cancellation must terminate the handler, not become an
            # ``{"ok": false}`` reply that keeps the loop running.
            raise
        except BaseException as error:  # noqa: BLE001 - typed on the wire
            return self._error_reply(error, message_id)

    # -- register ------------------------------------------------------

    def _apply_register(self, record: dict) -> dict:
        """Apply one register record to the catalog — the single path
        shared by wire registers and journal replay, so recovery is the
        same code that served the original request.

        Returns the reply fields plus ``journal_record``: the canonical
        record to journal (``None`` when the register was an idempotent
        no-op — same name, same content, no new replicas)."""
        name = record.get("instance")
        if not isinstance(name, str) or not name:
            raise ValueError("instance must be a non-empty string name")
        replicas = record.get("replicas", 1)
        if not isinstance(replicas, int) or replicas < 1:
            raise ValueError(
                f"replicas must be a positive integer, got {replicas!r}"
            )
        instance = Instance()
        for relation_name, arity in record.get("relations", []):
            instance.declare(relation_name, arity)
        tid = TupleIndependentDatabase(instance)
        for fact in record["facts"]:
            if len(fact) == 2:
                (relation_name, values), probability = fact, None
            else:
                relation_name, values, probability = fact
            tuple_id = instance.add(relation_name, _decode_values(values))
            if probability is not None:
                numerator, denominator = probability
                tid.set_probability(
                    tuple_id, Fraction(numerator, denominator)
                )
        old = self._tids.get(name)
        replaced = False
        changed = old is None
        if old is not None:
            if _same_content(old, tid):
                # Idempotent re-register: keep the warm catalog entry
                # (its cached derivations, segments and placements all
                # stay valid); only a replicas raise changes anything —
                # and the ring is prefix-stable, so existing copies
                # never move.
                tid = old
                changed = replicas > self._replicas.get(name, 1)
            else:
                # Atomic replacement: release the superseded service
                # registration first.  Placement identity is facts-only,
                # so skip the release when the facts are unchanged (a
                # probabilities-only replacement keeps the same
                # placement entry) or when another name still serves the
                # same facts — in both cases the registration is shared
                # and must survive.
                replaced = True
                changed = True
                old_fingerprint = old.instance.content_fingerprint()
                shared = (
                    old_fingerprint == instance.content_fingerprint()
                ) or any(
                    other_name != name
                    and other.instance.content_fingerprint()
                    == old_fingerprint
                    for other_name, other in self._tids.items()
                )
                if not shared:
                    self.service.unregister(old)
        effective_replicas = max(replicas, self._replicas.get(name, 1))
        if replaced:
            effective_replicas = replicas
        shard = self.service.register(tid, replicas=effective_replicas)
        self._tids[name] = tid
        self._replicas[name] = effective_replicas
        journal_record = None
        if changed:
            journal_record = {
                "instance": name,
                "relations": [
                    list(pair) for pair in record.get("relations", [])
                ],
                "facts": [list(fact) for fact in record["facts"]],
                "replicas": effective_replicas,
            }
        return {
            "instance": name,
            "shard": shard,
            "placement": list(self.service.placement_of(tid)),
            "tuples": len(tid),
            "replaced": replaced,
            "journal_record": journal_record,
        }

    async def _serve_register(self, message: dict) -> dict:
        if self._draining:
            self._draining_rejections += 1
            raise GatewayDraining(
                "gateway is draining; register against the restarted "
                "gateway"
            )
        info = self._apply_register(message)
        journal_record = info.pop("journal_record")
        if journal_record is not None and self._journal is not None:
            # Journal *before* acknowledging: an acked register is a
            # durable register.
            self._journal.append(journal_record)
        return {"id": message["id"], "ok": True, **info}

    # -- query ---------------------------------------------------------

    async def _serve_query(self, message: dict) -> dict:
        message_id = message.get("id")
        tenant = message.get("tenant", "")
        key = message.get("idempotency_key")
        idem_key = None
        if key is not None:
            if not isinstance(key, str) or not key:
                raise ValueError(
                    "idempotency_key must be a non-empty string"
                )
            idem_key = (tenant, key)
            entry = self._idem_get(idem_key)
            if isinstance(entry, dict):
                # Completed: replay the recorded reply verbatim.
                self._idem_hits += 1
                return {"id": message_id, **entry}
            if entry is not None:
                # In flight: join the same execution — no duplicate
                # submission, no duplicate sampling sweep.  Shielded so
                # one joiner's connection dying cannot cancel the
                # shared work.
                self._idem_joins += 1
                body = await asyncio.shield(entry)
                return {"id": message_id, **body}
        if self._draining:
            self._draining_rejections += 1
            raise GatewayDraining(
                "gateway is draining; retry against the restarted gateway"
            )
        name = message["instance"]
        tid = self._tids.get(name)
        if tid is None:
            raise KeyError(f"unknown instance {name!r} (register it first)")
        query = _decode_query(message["query"])
        budget = (
            _decode_budget(message["budget"])
            if message.get("budget") is not None
            else None
        )
        quota = self.tenant_quotas.get(tenant, self.default_tenant_quota)
        if self._inflight >= self.max_inflight:
            self._overloaded_rejections += 1
            raise GatewayOverloaded(
                f"gateway at max_inflight={self.max_inflight}"
            )
        if self._tenant_inflight.get(tenant, 0) >= quota:
            self._quota_rejections += 1
            raise TenantQuotaExceeded(
                f"tenant {tenant!r} at quota {quota}"
            )
        self._inflight += 1
        self._tenant_inflight[tenant] = (
            self._tenant_inflight.get(tenant, 0) + 1
        )
        self._check_idle()
        execution = self._execute(tid, query, budget, message, idem_key)
        if idem_key is not None:
            task = asyncio.ensure_future(execution)
            self._idem_put(idem_key, task)
            body = await asyncio.shield(task)
        else:
            body = await execution
        return {"id": message_id, **body}

    async def _execute(
        self,
        tid: TupleIndependentDatabase,
        query,
        budget,
        message: dict,
        idem_key: tuple | None,
    ) -> dict:
        """Run one admitted request to its recorded outcome — a reply
        body (sans ``id``) for an answer *or* a typed error.  Runs as
        its own task for keyed requests so the outcome lands in the
        response journal even if the submitting connection dies."""
        try:
            try:
                future = self.service.submit(
                    query,
                    tid,
                    budget,
                    deadline_ms=message.get("deadline_ms"),
                    priority=message.get("priority", 0),
                )
                response = await asyncio.wrap_future(future)
                body = {"ok": True, "response": response.to_payload()}
            except asyncio.CancelledError:
                raise
            except BaseException as error:  # noqa: BLE001 - typed wire
                body = {
                    "ok": False,
                    "error": type(error).__name__,
                    "message": str(error),
                }
        finally:
            self._inflight -= 1
            tenant = message.get("tenant", "")
            remaining = self._tenant_inflight.get(tenant, 1) - 1
            if remaining:
                self._tenant_inflight[tenant] = remaining
            else:
                self._tenant_inflight.pop(tenant, None)
            self._check_idle()
        self._requests += 1
        if idem_key is not None:
            self._idem_put(idem_key, body)
        return body

    async def _serve_stats(self, message: dict) -> dict:
        stats = self.service.stats()
        return {
            "id": message["id"],
            "ok": True,
            "stats": stats.to_payload(),
            "gateway": self.gateway_stats().to_payload(),
        }


class GatewayServer:
    """A :class:`Gateway` on a background thread with its own event loop
    — the synchronous wrapper for tests, benches and scripts.

    >>> from repro.serving import ShardedService
    >>> service = ShardedService(shards=1)
    >>> server = GatewayServer(service)
    >>> server.start()           # doctest: +SKIP
    >>> server.port              # doctest: +SKIP
    54321
    >>> server.restart()         # doctest: +SKIP
    >>> server.stop()            # doctest: +SKIP
    """

    def __init__(self, service: ShardedService, **gateway_kwargs):
        self._service = service
        self._gateway_kwargs = dict(gateway_kwargs)
        self.gateway = Gateway(service, **gateway_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._bound_port: int | None = None

    @property
    def port(self) -> int:
        if self._bound_port is not None:
            return self._bound_port
        return self.gateway.port

    def start(self, timeout: float = 10.0) -> "GatewayServer":
        if self._thread is not None:
            raise RuntimeError("gateway server already started")
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="pqe-gateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):  # pragma: no cover - startup
            raise RuntimeError("gateway server failed to start in time")
        self._bound_port = self.gateway.port
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.gateway.start())
            self._started.set()
            loop.run_forever()
            loop.run_until_complete(self.gateway.stop())
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()

    def drain(self, grace_ms: float = 5000.0) -> bool:
        """Drain the gateway from any thread (see
        :meth:`Gateway.drain`); returns the clean flag.  A never-started
        or already-stopped server is trivially drained."""
        loop = self._loop
        if loop is None or not loop.is_running():
            return True
        future = asyncio.run_coroutine_threadsafe(
            self.gateway.drain(grace_ms), loop
        )
        return future.result(timeout=grace_ms / 1e3 + 30.0)

    def stop(self) -> None:
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    def restart(
        self, *, graceful: bool = True, grace_ms: float = 5000.0
    ) -> "GatewayServer":
        """Replace the running gateway with a fresh one on the same
        port, its catalog rebuilt from the registration journal.

        ``graceful=True`` drains first — the listener closes, in-flight
        requests finish under their deadlines, and *zero accepted
        requests are lost*.  ``graceful=False`` is the crash lane: the
        old gateway is torn down with its in-flight state abandoned,
        exactly as a SIGKILL would leave things, and the journal is the
        only thing recovery gets to read — which is the property the
        chaos suite exercises."""
        was_running = self._thread is not None
        if graceful and was_running:
            self.drain(grace_ms)
        self.stop()
        kwargs = dict(self._gateway_kwargs)
        if was_running and self._bound_port is not None:
            kwargs["port"] = self._bound_port
        self.gateway = Gateway(self._service, **kwargs)
        return self.start()

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""The asyncio gateway: JSON lines over TCP in front of a ShardedService.

Pure stdlib (``asyncio.start_server``): clients speak newline-delimited
JSON objects and get one JSON object back per request, correlated by the
caller-chosen ``id``.  The gateway is a thin *policy* front — it parses,
enforces per-tenant quotas and gateway-wide backpressure, and routes into
the :class:`~repro.serving.service.ShardedService` behind it (either
backend); every deeper policy — deadlines, priorities, shedding,
breakers, retries, degradation — is PR 6's resilience layer inside the
shards, reused rather than reinvented here.  A rejected or failed
request is answered with the *typed* error name on the wire
(``DeadlineExceeded``, ``ShardOverloaded``, ``CircuitBreakerOpen``,
``TenantQuotaExceeded``, ...), mirroring the future-based API.

Protocol (one JSON object per line; ``id`` is echoed back)::

    {"op": "ping", "id": 0}
    {"op": "register", "id": 1, "instance": "orders",
     "facts": [["R", [1], [1, 2]], ["S1", [1, 2]], ["T", [2], [2, 3]]],
     "replicas": 2}                               # optional
    {"op": "query", "id": 2, "instance": "orders",
     "query": {"k": 1, "nvars": 2, "table": 8},
     "budget": {"epsilon": 0.05, "seed": 7},     # optional
     "deadline_ms": 50.0, "priority": 1,          # optional
     "tenant": "acme"}                            # optional
    {"op": "stats", "id": 3}

Replies are ``{"id": ..., "ok": true, ...}`` or ``{"id": ..., "ok":
false, "error": "<TypeName>", "message": "..."}``.  A ``register`` fact
is ``[relation, values]`` or ``[relation, values, [numerator,
denominator]]`` — probabilities are exact rationals on the wire (never
floats), defaulting to 1.  Queries travel as their complete content,
the same discipline the process backend uses across its pipe: an
h-query as ``{"k": ..., "nvars": ..., "table": ...}``, a general
UCQ/CQ for the lifted route as ``{"ucq": [[[rel, [term, ...]], ...],
...]}`` — a list of disjuncts, each a list of ``[relation, terms]``
atoms, where a term is a variable name string or ``{"const": value}``
for a constant.

Quotas and backpressure: ``max_inflight`` bounds the requests the
gateway will hold open across all connections, and ``tenant_quotas``
(falling back to ``default_tenant_quota``) bounds each tenant's; both
reject *immediately* with a typed error, like shard admission control —
a caller under quota pressure learns now, not after a queue delay.

``Gateway`` is the asyncio object (``await start()`` / ``await
stop()``); :class:`GatewayServer` wraps it in a background thread with
its own event loop for synchronous callers and tests.
"""

from __future__ import annotations

import asyncio
import json
import threading
from fractions import Fraction

from repro.core.boolean_function import BooleanFunction
from repro.db.relation import Instance
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.approximate import AccuracyBudget
from repro.queries.cq import Atom, ConjunctiveQuery, Constant
from repro.queries.hqueries import HQuery
from repro.queries.ucq import UnionOfCQs
from repro.serving.service import ShardedService

#: register/query lines may carry whole instances; the default 64 KiB
#: readline limit is too small for that.
_LINE_LIMIT = 1 << 22


class GatewayOverloaded(RuntimeError):
    """The gateway-wide in-flight bound is exhausted."""


class TenantQuotaExceeded(RuntimeError):
    """The requesting tenant's in-flight quota is exhausted."""


def _decode_values(values) -> tuple:
    """JSON arrays arrive as lists; facts are hashable tuples."""
    return tuple(
        _decode_values(value) if isinstance(value, list) else value
        for value in values
    )


def _decode_budget(payload: dict) -> AccuracyBudget:
    allowed = {
        "epsilon",
        "min_samples",
        "max_samples",
        "seed",
        "adaptive",
        "interval",
        "delta",
    }
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(f"unknown budget fields: {sorted(unknown)}")
    return AccuracyBudget(**payload)


def _decode_term(term):
    """A wire term: a variable name string, or ``{"const": v}``."""
    if isinstance(term, str):
        return term
    if isinstance(term, dict) and set(term) == {"const"}:
        value = term["const"]
        return Constant(
            _decode_values(value) if isinstance(value, list) else value
        )
    raise ValueError(f"bad query term on the wire: {term!r}")


def _decode_cq(atoms) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        tuple(
            Atom(relation, tuple(_decode_term(t) for t in terms))
            for relation, terms in atoms
        )
    )


def _decode_query(payload: dict) -> HQuery | UnionOfCQs:
    if "ucq" in payload:
        return UnionOfCQs(
            tuple(_decode_cq(atoms) for atoms in payload["ucq"])
        )
    return HQuery(
        payload["k"],
        BooleanFunction(payload["nvars"], payload["table"]),
    )


class Gateway:
    """One asyncio JSON-lines gateway over a :class:`ShardedService`."""

    def __init__(
        self,
        service: ShardedService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 1024,
        default_tenant_quota: int = 64,
        tenant_quotas: dict[str, int] | None = None,
    ):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if default_tenant_quota < 1:
            raise ValueError(
                f"default_tenant_quota must be positive, "
                f"got {default_tenant_quota}"
            )
        self.service = service
        self._host = host
        self._port = port
        self.max_inflight = max_inflight
        self.default_tenant_quota = default_tenant_quota
        self.tenant_quotas = dict(tenant_quotas or {})
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._tids: dict[str, TupleIndependentDatabase] = {}
        self._inflight = 0
        self._tenant_inflight: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`; 0 requests an ephemeral
        one)."""
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=_LINE_LIMIT,
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Open connections outlive the listener: cancel their handler
        # tasks so a stopped gateway leaves no task pending on the loop.
        connections = list(self._connections)
        for task in connections:
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # pragma: no cover - oversized line
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                reply = await self._serve_line(line)
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-reply; nothing to clean up
        except asyncio.CancelledError:
            # Gateway stopping: end this handler *cleanly* rather than
            # propagating — 3.11's stream protocol calls
            # ``task.exception()`` on the done handler task, which would
            # re-raise the cancellation into the event loop's logger.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    async def _serve_line(self, line: bytes) -> dict:
        message_id = None
        try:
            message = json.loads(line)
            if not isinstance(message, dict):
                raise ValueError("each line must be a JSON object")
            message_id = message.get("id")
            op = message.get("op")
            if op == "ping":
                return {"id": message_id, "ok": True, "pong": True}
            if op == "register":
                return await self._serve_register(message)
            if op == "query":
                return await self._serve_query(message)
            if op == "stats":
                return await self._serve_stats(message)
            raise ValueError(f"unknown op {op!r}")
        except BaseException as error:  # noqa: BLE001 - typed on the wire
            return {
                "id": message_id,
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }

    async def _serve_register(self, message: dict) -> dict:
        name = message["instance"]
        if not isinstance(name, str) or not name:
            raise ValueError("instance must be a non-empty string name")
        instance = Instance()
        for relation_name, arity in message.get("relations", []):
            instance.declare(relation_name, arity)
        tid = TupleIndependentDatabase(instance)
        for fact in message["facts"]:
            if len(fact) == 2:
                (relation_name, values), probability = fact, None
            else:
                relation_name, values, probability = fact
            tuple_id = instance.add(relation_name, _decode_values(values))
            if probability is not None:
                numerator, denominator = probability
                tid.set_probability(
                    tuple_id, Fraction(numerator, denominator)
                )
        replicas = message.get("replicas", 1)
        if not isinstance(replicas, int) or replicas < 1:
            raise ValueError(
                f"replicas must be a positive integer, got {replicas!r}"
            )
        shard = self.service.register(tid, replicas=replicas)
        self._tids[name] = tid
        return {
            "id": message["id"],
            "ok": True,
            "instance": name,
            "shard": shard,
            "placement": list(self.service.placement_of(tid)),
            "tuples": len(tid),
        }

    async def _serve_query(self, message: dict) -> dict:
        name = message["instance"]
        tid = self._tids.get(name)
        if tid is None:
            raise KeyError(f"unknown instance {name!r} (register it first)")
        query = _decode_query(message["query"])
        budget = (
            _decode_budget(message["budget"])
            if message.get("budget") is not None
            else None
        )
        tenant = message.get("tenant", "")
        quota = self.tenant_quotas.get(tenant, self.default_tenant_quota)
        if self._inflight >= self.max_inflight:
            raise GatewayOverloaded(
                f"gateway at max_inflight={self.max_inflight}"
            )
        if self._tenant_inflight.get(tenant, 0) >= quota:
            raise TenantQuotaExceeded(
                f"tenant {tenant!r} at quota {quota}"
            )
        self._inflight += 1
        self._tenant_inflight[tenant] = (
            self._tenant_inflight.get(tenant, 0) + 1
        )
        try:
            future = self.service.submit(
                query,
                tid,
                budget,
                deadline_ms=message.get("deadline_ms"),
                priority=message.get("priority", 0),
            )
            response = await asyncio.wrap_future(future)
        finally:
            self._inflight -= 1
            remaining = self._tenant_inflight.get(tenant, 1) - 1
            if remaining:
                self._tenant_inflight[tenant] = remaining
            else:
                self._tenant_inflight.pop(tenant, None)
        return {
            "id": message["id"],
            "ok": True,
            "response": response.to_payload(),
        }

    async def _serve_stats(self, message: dict) -> dict:
        stats = self.service.stats()
        return {
            "id": message["id"],
            "ok": True,
            "stats": stats.to_payload(),
        }


class GatewayServer:
    """A :class:`Gateway` on a background thread with its own event loop
    — the synchronous wrapper for tests, benches and scripts.

    >>> from repro.serving import ShardedService
    >>> service = ShardedService(shards=1)
    >>> server = GatewayServer(service)
    >>> server.start()           # doctest: +SKIP
    >>> server.port              # doctest: +SKIP
    54321
    >>> server.stop()            # doctest: +SKIP
    """

    def __init__(self, service: ShardedService, **gateway_kwargs):
        self.gateway = Gateway(service, **gateway_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.gateway.port

    def start(self, timeout: float = 10.0) -> "GatewayServer":
        if self._thread is not None:
            raise RuntimeError("gateway server already started")
        self._thread = threading.Thread(
            target=self._run, name="pqe-gateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):  # pragma: no cover - startup
            raise RuntimeError("gateway server failed to start in time")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.gateway.start())
            self._started.set()
            loop.run_forever()
            loop.run_until_complete(self.gateway.stop())
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()

    def stop(self) -> None:
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

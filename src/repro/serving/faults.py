"""Deterministic fault injection for the serving layer.

Chaos testing is only useful if a failure found once can be found
again: :class:`FaultInjector` draws every fault decision from the PR-5
:class:`~repro.db.tid.DrawStream` counter addressing, keyed by
``(shard, request index, attempt)`` — so a fault schedule is a pure
function of the seed and the admission order, replayable across runs,
wave schedules, and numpy availability.  Rates are exact
:class:`~fractions.Fraction` thresholds compared against integer draws
(``draw < numerator`` out of ``denominator``), never float
comparisons, so ``error_rate=0.1`` means *exactly* 1-in-10 in
expectation on every platform.

Five fault kinds, each on its own stream lane per shard:

- **worker errors** (``should_fail``): the worker raises
  :class:`TransientFaultError` mid-compute for the doomed request —
  exercising microbatch isolation, retries, and the circuit breaker.
  ``broken_requests`` marks ``(shard, index)`` pairs that fail on
  *every* attempt — permanent faults that must be failed typed rather
  than retried forever.
- **added latency** (``latency_ms_for``): the worker sleeps before
  serving — exercising deadline checks and degradation.
- **queue pressure** (``phantom_depth``): admission sees phantom extra
  queue depth — exercising the shed policy without needing real
  concurrent load.
- **worker kills** (``should_kill``): the shard's worker is crashed
  (SIGKILL on the process backend, simulated on threads) before serving
  the doomed attempt, raising :class:`WorkerCrashError` — exercising
  supervision, respawn-and-replay, and replica failover.
- **straggler latency** (``straggler_ms_for``): a *long* added delay on
  its own lane — exercising hedged requests, which must beat the
  straggler by racing a replica.

Three further lanes exercise the **network edge** (the asyncio gateway)
rather than the worker tier, keyed per ``(connection, request index,
attempt)`` the same way the worker lanes key per shard:

- **connection drops** (``should_drop_conn``): the gateway aborts the
  connection mid-reply — half the frame written, then a hard close —
  exercising client retries and the idempotent-response journal.
- **partial writes** (``should_split_write``): the reply frame is
  written in two separately-drained chunks — exercising client-side
  line reassembly without changing any outcome.
- **slow client** (``slow_client_ms_for``): a delay before the reply is
  written — exercising idle-timeout and drain interplay.

The injector is wired through :class:`~repro.serving.shard.Shard` /
:class:`~repro.serving.service.ShardedService` and
:class:`~repro.serving.gateway.Gateway` as an optional hook; a
``None`` injector costs nothing on the hot path.
"""

from __future__ import annotations

import threading
from fractions import Fraction

from repro.db.tid import DrawStream

__all__ = ["FaultInjector", "TransientFaultError", "WorkerCrashError"]

#: Lane block for fault streams, far from the samplers' lanes 0/1 and
#: the retry-jitter lane.  Each (kind, shard) pair gets its own lane.
_FAULT_LANE_BASE = 9001
_KIND_ERROR, _KIND_LATENCY, _KIND_PRESSURE = 0, 1, 2
_KIND_KILL, _KIND_STRAGGLER = 3, 4
_KIND_CONN_DROP, _KIND_PARTIAL_WRITE, _KIND_SLOW_CLIENT = 5, 6, 7
#: Draws are addressed by ``index * 32 + attempt`` so a retried request
#: re-rolls its fault independently of its first attempt.
_ATTEMPT_STRIDE = 32


def _as_rate(value, name: str) -> Fraction:
    """An exact probability in [0, 1].  Floats go through ``str`` so
    ``0.1`` means the decimal one-tenth, not its binary approximation."""
    rate = Fraction(str(value)) if isinstance(value, float) else Fraction(value)
    if not 0 <= rate <= 1:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return rate


class TransientFaultError(RuntimeError):
    """An injected worker failure, classified transient: the retry
    policy may re-attempt it (and will succeed unless the request is in
    ``broken_requests`` or re-rolls unlucky)."""


class WorkerCrashError(TransientFaultError):
    """An injected worker crash: the worker died under this attempt.
    Subclasses :class:`TransientFaultError` because with supervision the
    crash *is* transient — the retry lands on the respawned worker (or a
    replica) and succeeds."""


class FaultInjector:
    """Seeded, replayable fault schedules for chaos tests and benches.

    All decisions are pure functions of ``(seed, shard, index,
    attempt)``; the injector keeps only *observability* state (counters
    of faults actually fired), so sharing one injector across shards and
    threads is safe and does not perturb the schedule.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        error_rate=0,
        latency_rate=0,
        latency_ms: float = 0.0,
        pressure_rate=0,
        pressure_depth: int = 0,
        broken_requests=(),
        worker_kill_rate=0,
        straggler_rate=0,
        straggler_ms: float = 0.0,
        conn_drop_rate=0,
        partial_write_rate=0,
        slow_client_rate=0,
        slow_client_ms: float = 0.0,
    ):
        self.seed = seed
        self.error_rate = _as_rate(error_rate, "error_rate")
        self.latency_rate = _as_rate(latency_rate, "latency_rate")
        if latency_ms < 0:
            raise ValueError(f"latency_ms must be >= 0, got {latency_ms}")
        self.latency_ms = latency_ms
        self.pressure_rate = _as_rate(pressure_rate, "pressure_rate")
        if pressure_depth < 0:
            raise ValueError(
                f"pressure_depth must be >= 0, got {pressure_depth}"
            )
        self.pressure_depth = pressure_depth
        self.broken_requests = frozenset(broken_requests)
        self.worker_kill_rate = _as_rate(worker_kill_rate, "worker_kill_rate")
        self.straggler_rate = _as_rate(straggler_rate, "straggler_rate")
        if straggler_ms < 0:
            raise ValueError(f"straggler_ms must be >= 0, got {straggler_ms}")
        self.straggler_ms = straggler_ms
        self.conn_drop_rate = _as_rate(conn_drop_rate, "conn_drop_rate")
        self.partial_write_rate = _as_rate(
            partial_write_rate, "partial_write_rate"
        )
        self.slow_client_rate = _as_rate(
            slow_client_rate, "slow_client_rate"
        )
        if slow_client_ms < 0:
            raise ValueError(
                f"slow_client_ms must be >= 0, got {slow_client_ms}"
            )
        self.slow_client_ms = slow_client_ms
        self._lock = threading.Lock()
        self._streams: dict[tuple[int, int], DrawStream] = {}
        self._errors = 0
        self._latency_events = 0
        self._pressure_events = 0
        self._kills = 0
        self._straggler_events = 0
        self._conn_drops = 0
        self._partial_writes = 0
        self._slow_client_events = 0

    def _hit(
        self, kind: int, shard: int, rate: Fraction, counter: int
    ) -> bool:
        if rate == 0:
            return False
        if rate == 1:
            return True
        key = (kind, shard)
        with self._lock:
            stream = self._streams.get(key)
            if stream is None:
                lane = _FAULT_LANE_BASE + kind * 997 + shard
                stream = DrawStream(self.seed, lane)
                self._streams[key] = stream
        draw = stream.below(rate.denominator, counter, 1, use_numpy=False)[0]
        return draw < rate.numerator

    def should_fail(self, shard: int, index: int, attempt: int = 0) -> bool:
        """Whether request ``index`` on ``shard`` fails this ``attempt``."""
        if (shard, index) in self.broken_requests:
            with self._lock:
                self._errors += 1
            return True
        counter = index * _ATTEMPT_STRIDE + (attempt % _ATTEMPT_STRIDE)
        if self._hit(_KIND_ERROR, shard, self.error_rate, counter):
            with self._lock:
                self._errors += 1
            return True
        return False

    def latency_ms_for(
        self, shard: int, index: int, attempt: int = 0
    ) -> float:
        """Extra latency (ms) to inject before serving this attempt."""
        counter = index * _ATTEMPT_STRIDE + (attempt % _ATTEMPT_STRIDE)
        if self.latency_ms > 0 and self._hit(
            _KIND_LATENCY, shard, self.latency_rate, counter
        ):
            with self._lock:
                self._latency_events += 1
            return self.latency_ms
        return 0.0

    def should_kill(self, shard: int, index: int, attempt: int = 0) -> bool:
        """Whether to crash ``shard``'s worker under this attempt."""
        counter = index * _ATTEMPT_STRIDE + (attempt % _ATTEMPT_STRIDE)
        if self._hit(_KIND_KILL, shard, self.worker_kill_rate, counter):
            with self._lock:
                self._kills += 1
            return True
        return False

    def straggler_ms_for(
        self, shard: int, index: int, attempt: int = 0
    ) -> float:
        """Straggler delay (ms) to inject before serving this attempt."""
        counter = index * _ATTEMPT_STRIDE + (attempt % _ATTEMPT_STRIDE)
        if self.straggler_ms > 0 and self._hit(
            _KIND_STRAGGLER, shard, self.straggler_rate, counter
        ):
            with self._lock:
                self._straggler_events += 1
            return self.straggler_ms
        return 0.0

    def should_drop_conn(
        self, conn: int, index: int, attempt: int = 0
    ) -> bool:
        """Whether the gateway should abort connection ``conn`` mid-way
        through the reply to its ``index``-th request.  Like the worker
        lanes, a retried request (new attempt, or the same key resent on
        a new connection) re-rolls independently."""
        counter = index * _ATTEMPT_STRIDE + (attempt % _ATTEMPT_STRIDE)
        if self._hit(_KIND_CONN_DROP, conn, self.conn_drop_rate, counter):
            with self._lock:
                self._conn_drops += 1
            return True
        return False

    def should_split_write(
        self, conn: int, index: int, attempt: int = 0
    ) -> bool:
        """Whether to write this reply frame in two drained chunks."""
        counter = index * _ATTEMPT_STRIDE + (attempt % _ATTEMPT_STRIDE)
        if self._hit(
            _KIND_PARTIAL_WRITE, conn, self.partial_write_rate, counter
        ):
            with self._lock:
                self._partial_writes += 1
            return True
        return False

    def slow_client_ms_for(
        self, conn: int, index: int, attempt: int = 0
    ) -> float:
        """Delay (ms) to inject before writing this reply."""
        counter = index * _ATTEMPT_STRIDE + (attempt % _ATTEMPT_STRIDE)
        if self.slow_client_ms > 0 and self._hit(
            _KIND_SLOW_CLIENT, conn, self.slow_client_rate, counter
        ):
            with self._lock:
                self._slow_client_events += 1
            return self.slow_client_ms
        return 0.0

    def phantom_depth(self, shard: int, index: int) -> int:
        """Phantom queue depth admission control should add for this
        request (attempt-independent: admission happens once)."""
        if self.pressure_depth > 0 and self._hit(
            _KIND_PRESSURE, shard, self.pressure_rate, index * _ATTEMPT_STRIDE
        ):
            with self._lock:
                self._pressure_events += 1
            return self.pressure_depth
        return 0

    def stats(self) -> dict[str, int]:
        """Counters of faults actually fired (observability only)."""
        with self._lock:
            return {
                "errors": self._errors,
                "latency_events": self._latency_events,
                "pressure_events": self._pressure_events,
                "kills": self._kills,
                "straggler_events": self._straggler_events,
                "conn_drops": self._conn_drops,
                "partial_writes": self._partial_writes,
                "slow_client_events": self._slow_client_events,
            }

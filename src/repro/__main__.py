"""``python -m repro``: a one-command self-check and tour.

Runs the library's headline pipeline end to end on the paper's running
example and prints a compact report: safety verdicts, the three engines'
(identical) probabilities, the compiled circuit's shape, and the Figure-1
classification of a few reference functions.  Exits non-zero if any
cross-check fails — a smoke test for installations.
"""

from __future__ import annotations

import sys
from fractions import Fraction

from repro import HQuery, complete_tid, phi_9
from repro.core.euler import euler_characteristic
from repro.core.zoo import phi_max_euler
from repro.lattice.cnf_lattice import mobius_cnf_value
from repro.pqe import (
    classify_function,
    evaluate,
    extensional_probability,
    probability_by_world_enumeration,
)


def main() -> int:
    print("repro — Monet (PODS 2020) reproduction self-check")
    print("=" * 60)

    query = HQuery(3, phi_9())
    print(f"query: {query}")
    mobius = mobius_cnf_value(query.phi)
    euler = euler_characteristic(query.phi)
    print(f"mu_CNF(0̂,1̂) = {mobius}, e(phi_9) = {euler}")
    if mobius != 0 or euler != 0:
        print("FAIL: q_9 should be safe by both criteria")
        return 1

    tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
    result = evaluate(query, tid)
    intensional = evaluate(query, tid, method="intensional")
    ext = extensional_probability(query, tid)
    brute = probability_by_world_enumeration(query, tid)
    print(f"Pr(q_9) on the complete n=2 instance ({len(tid)} tuples):")
    print(f"  auto ({result.engine}): {result.probability}")
    print(f"  intensional (d-D):     {intensional.probability}")
    print(f"  extensional:           {ext}")
    print(f"  brute force:           {brute}")
    if not result.probability == intensional.probability == ext == brute:
        print("FAIL: engines disagree")
        return 1
    if result.engine != "extensional":
        print("FAIL: auto should route the safe UCQ q_9 extensionally")
        return 1
    assert intensional.compiled is not None
    stats = intensional.compiled.circuit.stats()
    print(f"compiled d-D: {stats['TOTAL']} gates "
          f"({stats['AND']} ∧ / {stats['OR']} ∨ / {stats['NOT']} ¬)")

    print("\nFigure-1 classification of reference functions:")
    from repro.core.boolean_function import BooleanFunction

    references = [
        ("phi_9 (safe UCQ)", phi_9()),
        ("h_1 alone (degenerate)", BooleanFunction.variable(1, 4)),
        ("full disjunction (hard)", _full_disjunction(3)),
        ("phi_maxEuler (conjectured)", phi_max_euler(3)),
    ]
    for name, phi in references:
        verdict = classify_function(phi)
        print(f"  {name:<28} e = {verdict.euler:>3}   {verdict.region.value}")

    print("\nall self-checks passed")
    return 0


def _full_disjunction(k: int):
    from repro.core.boolean_function import BooleanFunction

    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return phi


if __name__ == "__main__":
    sys.exit(main())

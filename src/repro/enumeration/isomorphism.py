"""Isomorphism classes of Boolean functions under variable permutation.

The paper counts the Conjecture-1 sweep in "non-isomorphic (under
permutation of the variables) nondegenerate functions"; this module
provides the canonicalization and class enumeration for the scaled-down
sweeps of our benches.  Canonical representative: the smallest truth table
over all variable permutations (exponential in the — small, fixed — number
of variables).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.boolean_function import BooleanFunction


def canonical_table(phi: BooleanFunction) -> int:
    """The canonical (minimal) truth table of the permutation class."""
    return phi.canonical_form_under_permutation()


def isomorphism_classes(
    functions: Iterable[BooleanFunction],
) -> dict[int, BooleanFunction]:
    """Group functions by permutation class; returns a map from canonical
    table to one representative per class."""
    classes: dict[int, BooleanFunction] = {}
    for phi in functions:
        key = canonical_table(phi)
        if key not in classes:
            classes[key] = phi
    return classes


def enumerate_class_representatives(
    functions: Iterable[BooleanFunction],
) -> Iterator[BooleanFunction]:
    """One representative per isomorphism class, in discovery order.

    Euler characteristic, degeneracy, monotonicity, fragmentability and the
    perfect-matching facts are all permutation-invariant, so sweeping one
    representative per class is enough for every check in this package.
    """
    seen: set[int] = set()
    for phi in functions:
        key = canonical_table(phi)
        if key not in seen:
            seen.add(key)
            yield phi


def count_classes(functions: Iterable[BooleanFunction]) -> int:
    """Number of distinct permutation classes among ``functions``."""
    return len(isomorphism_classes(functions))

"""Enumeration of Boolean functions: all functions, monotone functions
(Dedekind ideals) and isomorphism classes under variable permutation."""

from repro.enumeration.isomorphism import (
    canonical_table,
    count_classes,
    enumerate_class_representatives,
    isomorphism_classes,
)
from repro.enumeration.monotone import (
    DEDEKIND_NUMBERS,
    count_monotone,
    enumerate_all_functions,
    enumerate_monotone_functions,
    enumerate_nondegenerate_monotone,
    monotone_tables,
)

__all__ = [
    "DEDEKIND_NUMBERS",
    "canonical_table",
    "count_classes",
    "count_monotone",
    "enumerate_all_functions",
    "enumerate_class_representatives",
    "enumerate_monotone_functions",
    "enumerate_nondegenerate_monotone",
    "isomorphism_classes",
    "monotone_tables",
]

"""Enumeration of monotone Boolean functions (Dedekind ideals).

The paper's Conjecture-1 experiment sweeps all monotone functions with
``k <= 5``; Lemma 3.8 and the Figure-1 region counts need the same sweep
for small ``k``.  We enumerate by the classical recursion: a monotone
function on ``n`` variables is a pair ``(phi_without, phi_with)`` of
monotone functions on ``n - 1`` variables — the cofactors of the last
variable — constrained by ``phi_without <= phi_with``.  The counts are the
Dedekind numbers ``M(n) = 2, 3, 6, 20, 168, 7581, 7828354, ...``; in pure
Python the sweep is comfortable through ``n = 5`` (``k = 4``) and possible,
if slow, for ``n = 6``.

Functions are produced as truth-table ints (see
:class:`repro.core.boolean_function.BooleanFunction`): the table of a pair
is ``low | (high << 2^{n-1})`` and the constraint is the bitmask subset test
``low & ~high == 0``.
"""

from __future__ import annotations

from collections.abc import Iterator
from functools import lru_cache

from repro.core.boolean_function import BooleanFunction

#: Dedekind numbers M(n) for n = 0..8 (number of monotone functions on n
#: variables), used by tests as the ground truth for the enumeration.
DEDEKIND_NUMBERS = [
    2,
    3,
    6,
    20,
    168,
    7581,
    7828354,
    2414682040998,
    56130437228687557907788,
]


@lru_cache(maxsize=None)
def monotone_tables(nvars: int) -> tuple[int, ...]:
    """All truth tables of monotone functions on ``nvars`` variables,
    sorted ascending.  Cached; sizes follow the Dedekind numbers.

    :raises ValueError: for ``nvars > 6`` (the next Dedekind number is
        astronomically large).
    """
    if nvars < 0:
        raise ValueError("nvars must be non-negative")
    if nvars > 6:
        raise ValueError("enumeration beyond 6 variables is not feasible")
    if nvars == 0:
        return (0, 1)
    smaller = monotone_tables(nvars - 1)
    shift = 1 << (nvars - 1)
    tables = [
        low | (high << shift)
        for high in smaller
        for low in smaller
        if low & ~high == 0
    ]
    return tuple(sorted(tables))


def enumerate_monotone_functions(nvars: int) -> Iterator[BooleanFunction]:
    """Iterate over all monotone functions on ``nvars`` variables."""
    for table in monotone_tables(nvars):
        yield BooleanFunction(nvars, table)


def count_monotone(nvars: int) -> int:
    """``M(nvars)`` by enumeration (tests compare with the table above)."""
    return len(monotone_tables(nvars))


def enumerate_nondegenerate_monotone(nvars: int) -> Iterator[BooleanFunction]:
    """Monotone functions depending on *every* variable — the hypothesis of
    Lemma 3.8 and Proposition 3.5."""
    for phi in enumerate_monotone_functions(nvars):
        if phi.is_nondegenerate():
            yield phi


def enumerate_all_functions(nvars: int) -> Iterator[BooleanFunction]:
    """All ``2^{2^nvars}`` Boolean functions — exhaustive sweeps for the
    Figure-1 region counts (``nvars <= 4`` only).

    :raises ValueError: beyond 4 variables.
    """
    if nvars > 4:
        raise ValueError("exhaustive function enumeration limited to 4 variables")
    for table in range(1 << (1 << nvars)):
        yield BooleanFunction(nvars, table)

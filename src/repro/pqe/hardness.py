"""Hardness machinery: Proposition 6.4, Lemma C.1 and the PQE reductions.

Hardness cannot be "run", but its *constructive content* can: Lemma C.1
builds a monotone function with any achievable Euler characteristic, and
Theorem 6.2(a) turns a ≃-derivation between equal-Euler functions into an
explicit Turing reduction between their PQE problems.  This module exposes
both, plus the reduction-based evaluation used by tests: computing
``Pr(Q_phi)`` for a non-monotone zero-Euler ``phi`` by reducing to an
equal-Euler *monotone* query evaluated extensionally.

The reduction (proof of Theorem 6.2): if ``phi' = phi ±(nu, l)``, then on
every database ``Pr(Q_phi') = Pr(Q_phi) ± Pr(Q_psi)`` with ``psi`` the
degenerate pair function of the step — and ``Pr(Q_psi)`` is computable in
PTIME (Proposition 3.7).  Chaining the steps walks the probability from
one query to the other with polynomially many PTIME corrections.
"""

from __future__ import annotations

from fractions import Fraction

from repro.circuits.probability import probability as circuit_probability
from repro.core.boolean_function import BooleanFunction
from repro.core.euler import (
    monotone_euler_extremes,
    monotone_function_with_euler,
)
from repro.core.fragmentation import pair_function
from repro.core.transformation import transform
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.degenerate import degenerate_lineage_circuit
from repro.queries.hqueries import HQuery


def monotone_witness_with_same_euler(phi: BooleanFunction) -> BooleanFunction:
    """Lemma C.1: a *monotone* function with the same Euler characteristic
    as ``phi``, provided the value lies in the monotone-achievable range.

    This is the pivot of Proposition 6.4: hardness of the monotone witness
    (Corollary 3.9) transfers to ``Q_phi`` through Theorem 6.2(a).

    :raises ValueError: if ``e(phi)`` is outside the monotone range (then
        Proposition 6.4 does not apply — the dotted-gray region of
        Figure 1, e.g. ``phi_maxEuler``).
    """
    k = phi.nvars - 1
    euler = phi.euler_characteristic()
    low, high = monotone_euler_extremes(k)
    if not low <= euler <= high:
        raise ValueError(
            f"e(phi) = {euler} is outside the monotone range [{low}, {high}]"
        )
    return monotone_function_with_euler(k, euler)


def is_provably_hard(phi: BooleanFunction) -> bool:
    """Proposition 6.4 (+ Corollary 3.9): ``PQE(Q_phi)`` is #P-hard when
    ``e(phi) != 0`` and ``e(phi)`` is monotone-achievable."""
    euler = phi.euler_characteristic()
    if euler == 0:
        return False
    low, high = monotone_euler_extremes(phi.nvars - 1)
    return low <= euler <= high


def step_correction(
    step, k: int, tid: TupleIndependentDatabase
) -> Fraction:
    """``Pr(Q_psi)`` for the pair function of one ≃-step — the PTIME
    correction term of the Theorem 6.2(a) reduction."""
    psi = pair_function(k + 1, step)
    circuit = degenerate_lineage_circuit(psi, tid.instance)
    return circuit_probability(circuit, tid.probability_map())


def probability_by_reduction(
    query: HQuery,
    tid: TupleIndependentDatabase,
    oracle,
) -> Fraction:
    """Theorem 6.2(a) as an algorithm: evaluate ``Pr(Q_phi)`` given an
    oracle for ``Pr(Q_phi')`` of any equal-Euler ``phi'`` of the caller's
    choosing — here the monotone witness of Lemma C.1, so the natural
    oracle is the extensional engine.

    ``oracle(query', tid)`` must return ``Pr(Q_phi')`` exactly.

    The derivation ``phi' ~> phi`` contributes one signed PTIME correction
    per step:  ``Pr(Q_{phi_i}) = Pr(Q_{phi_{i-1}}) + sign_i * Pr(Q_psi_i)``.
    """
    phi = query.phi
    witness = monotone_witness_with_same_euler(phi)
    witness_query = HQuery(query.k, witness)
    value = oracle(witness_query, tid)
    for step in transform(witness, phi):
        value += step.sign * step_correction(step, query.k, tid)
    return value

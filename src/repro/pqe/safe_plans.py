"""Safe-plan evaluation of disjunctions of ``h_{k,i}`` queries.

The extensional algorithm for H+-queries (Proposition 3.5 / Section 7's
recap of [12]) reduces, after Möbius inversion over the CNF lattice, to
evaluating queries of the form ``Q_S = ∨_{i in S} h_{k,i}`` for *proper*
subsets ``S ⊊ {0..k}`` — the inversion-free disjunctions.  This module
evaluates those in polynomial time:

1. **Run decomposition.** Split ``S`` into maximal runs of consecutive
   indices.  Two distinct runs use disjoint relation sets (a gap of one
   index separates their ``S_i`` ranges), so their events are independent:
   ``Pr(∨ runs) = 1 - prod (1 - Pr(run))``.
2. **Per-run lifted plan.**  A run ``[a..b]`` misses 0 or k (else it would
   be all of ``{0..k}``, the #P-hard core).  Its event factorizes over the
   independent groups of tuples sharing the distinguished variable:

   * interior run (``a > 0`` and ``b < k``): group by the pair ``(x, y)``;
   * left run (``a = 0``): group by ``x`` (the ``R`` side);
   * right run (``b = k``): group by ``y`` (the ``T`` side);

   and inside one group the event is a *chain* formula over the tuples
   ``S_a(x,y), ..., S_{b+1}(x,y)`` (plus ``R(x)`` or ``T(y)``), whose
   probability a linear dynamic program computes exactly.

All arithmetic is exact (:class:`fractions.Fraction`).
"""

from __future__ import annotations

from collections.abc import Iterable
from fractions import Fraction

from repro.db.tid import TupleIndependentDatabase


class UnsafeSubqueryError(ValueError):
    """Raised when asked to lift the full disjunction ``h_{k,0} ∨ ... ∨
    h_{k,k}``, which is #P-hard ([12]; the bottom element of every CNF
    lattice of a nondegenerate H+-query)."""


def runs_of(indices: Iterable[int]) -> list[tuple[int, int]]:
    """Maximal runs of consecutive integers, as inclusive ``(start, end)``
    pairs.

    >>> runs_of([0, 1, 3, 5, 6])
    [(0, 1), (3, 3), (5, 6)]
    """
    sorted_indices = sorted(set(indices))
    runs: list[tuple[int, int]] = []
    for index in sorted_indices:
        if runs and index == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], index)
        else:
            runs.append((index, index))
    return runs


def chain_probability(
    probabilities: list[Fraction],
    satisfied_by_first: bool = False,
    satisfied_by_last: bool = False,
) -> Fraction:
    """Probability that a chain of independent Boolean tuples
    ``t_1, ..., t_m`` satisfies "some adjacent pair is jointly present"
    (``∃j: t_j ∧ t_{j+1}``), optionally also satisfied by ``t_1`` alone
    (the ``R``-side rule: ``R(x)`` has already fired) or by ``t_m`` alone
    (the ``T`` side).

    Linear dynamic program over states (previous tuple present?, already
    satisfied?).
    """
    # state: (prev_present, satisfied) -> probability mass
    states = {(False, False): Fraction(1)}
    for position, p in enumerate(probabilities):
        first = position == 0
        last = position == len(probabilities) - 1
        nxt: dict[tuple[bool, bool], Fraction] = {}
        for (prev, satisfied), mass in states.items():
            for present in (False, True):
                weight = p if present else (1 - p)
                if weight == 0:
                    continue
                now_satisfied = satisfied
                if present and prev:
                    now_satisfied = True
                if present and first and satisfied_by_first:
                    now_satisfied = True
                if present and last and satisfied_by_last:
                    now_satisfied = True
                key = (present, now_satisfied)
                nxt[key] = nxt.get(key, Fraction(0)) + mass * weight
        states = nxt
    return sum(
        (mass for (_, satisfied), mass in states.items() if satisfied),
        Fraction(0),
    )


def _domain_sides(tid: TupleIndependentDatabase, k: int) -> tuple[list, list]:
    """The x-side and y-side active domains (elements appearing in the
    relevant positions of ``R``, ``T`` and the ``S_i``)."""
    xs: set = set()
    ys: set = set()
    instance = tid.instance
    for tuple_id in instance.tuple_ids():
        if tuple_id.relation == "R":
            xs.add(tuple_id.values[0])
        elif tuple_id.relation == "T":
            ys.add(tuple_id.values[0])
        elif tuple_id.relation.startswith("S"):
            xs.add(tuple_id.values[0])
            ys.add(tuple_id.values[1])
    del k
    return sorted(xs, key=repr), sorted(ys, key=repr)


def _tuple_probability(
    tid: TupleIndependentDatabase, relation: str, values: tuple
) -> Fraction:
    """``pi`` of a potential tuple; absent tuples have probability 0."""
    from repro.db.relation import TupleId

    if not tid.instance.has(relation, values):
        return Fraction(0)
    return tid.probability_of(TupleId(relation, values))


def run_probability(
    run: tuple[int, int], k: int, tid: TupleIndependentDatabase
) -> Fraction:
    """``Pr(∨_{i in [a..b]} h_{k,i})`` for one maximal run, by the lifted
    plan described in the module docstring.

    :raises UnsafeSubqueryError: if the run is all of ``{0..k}``.
    """
    a, b = run
    if not 0 <= a <= b <= k:
        raise ValueError(f"run {run} out of bounds for k = {k}")
    if a == 0 and b == k:
        raise UnsafeSubqueryError(
            "the full disjunction h_{k,0} ∨ ... ∨ h_{k,k} is #P-hard and "
            "has no safe plan"
        )
    xs, ys = _domain_sides(tid, k)
    if a == 0:
        return _left_run_probability(b, tid, xs, ys)
    if b == k:
        return _right_run_probability(a, k, tid, xs, ys)
    return _interior_run_probability(a, b, tid, xs, ys)


def _interior_run_probability(
    a: int, b: int, tid: TupleIndependentDatabase, xs: list, ys: list
) -> Fraction:
    """Run touching neither endpoint: events independent across ``(x, y)``
    pairs; within a pair, a chain over ``S_a .. S_{b+1}``."""
    miss_all = Fraction(1)
    for x in xs:
        for y in ys:
            chain = [
                _tuple_probability(tid, f"S{i}", (x, y))
                for i in range(a, b + 2)
            ]
            miss_all *= 1 - chain_probability(chain)
    return 1 - miss_all


def _left_run_probability(
    b: int, tid: TupleIndependentDatabase, xs: list, ys: list
) -> Fraction:
    """Run ``[0..b]`` (with ``b < k``): group by ``x``; conditioned on
    ``R(x)``, the per-``y`` chain over ``S_1..S_{b+1}`` is satisfied also by
    ``S_1`` alone."""
    miss_all = Fraction(1)
    for x in xs:
        p_r = _tuple_probability(tid, "R", (x,))
        miss_without_r = Fraction(1)
        miss_with_r = Fraction(1)
        for y in ys:
            chain = [
                _tuple_probability(tid, f"S{i}", (x, y))
                for i in range(1, b + 2)
            ]
            miss_without_r *= 1 - chain_probability(chain)
            miss_with_r *= 1 - chain_probability(
                chain, satisfied_by_first=True
            )
        hit_x = p_r * (1 - miss_with_r) + (1 - p_r) * (1 - miss_without_r)
        miss_all *= 1 - hit_x
    return 1 - miss_all


def _right_run_probability(
    a: int, k: int, tid: TupleIndependentDatabase, xs: list, ys: list
) -> Fraction:
    """Run ``[a..k]`` (with ``a > 0``): the mirror image — group by ``y``;
    conditioned on ``T(y)``, the per-``x`` chain over ``S_a..S_k`` is
    satisfied also by ``S_k`` alone."""
    miss_all = Fraction(1)
    for y in ys:
        p_t = _tuple_probability(tid, "T", (y,))
        miss_without_t = Fraction(1)
        miss_with_t = Fraction(1)
        for x in xs:
            chain = [
                _tuple_probability(tid, f"S{i}", (x, y))
                for i in range(a, k + 1)
            ]
            miss_without_t *= 1 - chain_probability(chain)
            miss_with_t *= 1 - chain_probability(
                chain, satisfied_by_last=True
            )
        hit_y = p_t * (1 - miss_with_t) + (1 - p_t) * (1 - miss_without_t)
        miss_all *= 1 - hit_y
    return 1 - miss_all


def disjunction_probability(
    indices: Iterable[int], k: int, tid: TupleIndependentDatabase
) -> Fraction:
    """``Pr(∨_{i in S} h_{k,i})`` for a proper subset ``S ⊊ {0..k}`` — or
    for the empty set, where the probability is 0.

    :raises UnsafeSubqueryError: if ``S = {0..k}``.
    """
    index_set = set(indices)
    if not index_set:
        return Fraction(0)
    if not index_set <= set(range(k + 1)):
        raise ValueError(f"indices {sorted(index_set)} out of range for k={k}")
    miss_all = Fraction(1)
    for run in runs_of(index_set):
        miss_all *= 1 - run_probability(run, k, tid)
    return 1 - miss_all

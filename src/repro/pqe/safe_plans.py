"""Safe-plan evaluation of disjunctions of ``h_{k,i}`` queries.

The extensional algorithm for H+-queries (Proposition 3.5 / Section 7's
recap of [12]) reduces, after Möbius inversion over the CNF lattice, to
evaluating queries of the form ``Q_S = ∨_{i in S} h_{k,i}`` for *proper*
subsets ``S ⊊ {0..k}`` — the inversion-free disjunctions.  This module
evaluates those in polynomial time:

1. **Run decomposition.** Split ``S`` into maximal runs of consecutive
   indices.  Two distinct runs use disjoint relation sets (a gap of one
   index separates their ``S_i`` ranges), so their events are independent:
   ``Pr(∨ runs) = 1 - prod (1 - Pr(run))``.
2. **Per-run lifted plan.**  A run ``[a..b]`` misses 0 or k (else it would
   be all of ``{0..k}``, the #P-hard core).  Its event factorizes over the
   independent groups of tuples sharing the distinguished variable:

   * interior run (``a > 0`` and ``b < k``): group by the pair ``(x, y)``;
   * left run (``a = 0``): group by ``x`` (the ``R`` side);
   * right run (``b = k``): group by ``y`` (the ``T`` side);

   and inside one group the event is a *chain* formula over the tuples
   ``S_a(x,y), ..., S_{b+1}(x,y)`` (plus ``R(x)`` or ``T(y)``), whose
   probability a linear dynamic program computes exactly.

The evaluators are *columnar*: the group structure and probability
columns come from :func:`repro.db.columnar.h_columns`, and the chain DP
runs over all groups of a run at once — as numpy array sweeps in the
float backend, and as integer numerators over one common denominator
``D`` in the exact backend (the same encoding
:meth:`repro.circuits.evaluator.EvaluationTape.evaluate` uses: every
state mass after ``j`` chain steps is ``numerator / D**j``, and the one
``Fraction`` built at the end canonicalizes, so the result is
bit-identical to the :class:`~fractions.Fraction` dynamic program).
Exact maps whose common denominator overflows 64 bits — and float
evaluation without numpy — fall back to the per-group pure-Python scans.
"""

from __future__ import annotations

from collections.abc import Iterable
from fractions import Fraction

from repro.db.columnar import HColumns, h_columns
from repro.db.tid import TupleIndependentDatabase

try:  # numpy is optional: the float backend falls back to group loops.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the list fallback
    _np = None


class UnsafeSubqueryError(ValueError):
    """Raised when asked to lift the full disjunction ``h_{k,0} ∨ ... ∨
    h_{k,k}``, which is #P-hard ([12]; the bottom element of every CNF
    lattice of a nondegenerate H+-query)."""


def runs_of(indices: Iterable[int]) -> list[tuple[int, int]]:
    """Maximal runs of consecutive integers, as inclusive ``(start, end)``
    pairs.

    >>> runs_of([0, 1, 3, 5, 6])
    [(0, 1), (3, 3), (5, 6)]
    """
    sorted_indices = sorted(set(indices))
    runs: list[tuple[int, int]] = []
    for index in sorted_indices:
        if runs and index == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], index)
        else:
            runs.append((index, index))
    return runs


def chain_probability(
    probabilities: list[Fraction],
    satisfied_by_first: bool = False,
    satisfied_by_last: bool = False,
) -> Fraction:
    """Probability that a chain of independent Boolean tuples
    ``t_1, ..., t_m`` satisfies "some adjacent pair is jointly present"
    (``∃j: t_j ∧ t_{j+1}``), optionally also satisfied by ``t_1`` alone
    (the ``R``-side rule: ``R(x)`` has already fired) or by ``t_m`` alone
    (the ``T`` side).

    Linear dynamic program over states (previous tuple present?, already
    satisfied?) — the scalar reference the vectorized sweeps reproduce.
    """
    # state: (prev_present, satisfied) -> probability mass
    states = {(False, False): Fraction(1)}
    for position, p in enumerate(probabilities):
        first = position == 0
        last = position == len(probabilities) - 1
        nxt: dict[tuple[bool, bool], Fraction] = {}
        for (prev, satisfied), mass in states.items():
            for present in (False, True):
                weight = p if present else (1 - p)
                if weight == 0:
                    continue
                now_satisfied = satisfied
                if present and prev:
                    now_satisfied = True
                if present and first and satisfied_by_first:
                    now_satisfied = True
                if present and last and satisfied_by_last:
                    now_satisfied = True
                key = (present, now_satisfied)
                nxt[key] = nxt.get(key, Fraction(0)) + mass * weight
        states = nxt
    return sum(
        (mass for (_, satisfied), mass in states.items() if satisfied),
        Fraction(0),
    )


# ----------------------------------------------------------------------
# Vectorized chain sweeps (all groups of one run at once)
# ----------------------------------------------------------------------
#
# The DP state per group is four masses indexed by (previous tuple
# present?, already satisfied?).  One chain step with tuple probability
# ``p`` (and ``q = 1 - p``) maps them by
#
#   new(0,s) = q * (old(0,s) + old(1,s))          (tuple absent)
#   new(1,0) = p * old(0,0)                        (present, no new pair)
#   new(1,1) = p * (old(0,1) + old(1,0) + old(1,1))
#
# except at a *triggering* position (the first tuple under
# ``satisfied_by_first``, the last under ``satisfied_by_last``), where a
# present tuple satisfies unconditionally:
#
#   new(1,0) = 0;   new(1,1) = p * (all four old masses).
#
# The sweeps apply these maps to whole columns of groups per step.


def _chain_sweep_int(
    chains: list[list[int]],
    groups: int,
    denominator: int,
    satisfied_by_first: bool,
    satisfied_by_last: bool,
) -> list[int]:
    """The exact sweep: per-group satisfaction numerators at denominator
    ``denominator ** len(chains)``.  ``chains[j][g]`` is the integer
    numerator of chain position ``j`` in group ``g``."""
    m = len(chains)
    s00 = [1] * groups
    s01 = [0] * groups
    s10 = [0] * groups
    s11 = [0] * groups
    for j in range(m):
        column = chains[j]
        trigger = (j == 0 and satisfied_by_first) or (
            j == m - 1 and satisfied_by_last
        )
        for g in range(groups):
            p = column[g]
            q = denominator - p
            a00, a01, a10, a11 = s00[g], s01[g], s10[g], s11[g]
            s00[g] = q * (a00 + a10)
            s01[g] = q * (a01 + a11)
            if trigger:
                s10[g] = 0
                s11[g] = p * (a00 + a01 + a10 + a11)
            else:
                s10[g] = p * a00
                s11[g] = p * (a01 + a10 + a11)
    return [s01[g] + s11[g] for g in range(groups)]


def _chain_sweep_float(chains, satisfied_by_first, satisfied_by_last):
    """The numpy sweep: ``chains`` is an array of shape ``(m, *groups)``;
    returns the per-group satisfaction probabilities, shape ``groups``."""
    m = chains.shape[0]
    shape = chains.shape[1:]
    s00 = _np.ones(shape)
    s01 = _np.zeros(shape)
    s10 = _np.zeros(shape)
    s11 = _np.zeros(shape)
    for j in range(m):
        p = chains[j]
        q = 1.0 - p
        trigger = (j == 0 and satisfied_by_first) or (
            j == m - 1 and satisfied_by_last
        )
        n00 = q * (s00 + s10)
        n01 = q * (s01 + s11)
        if trigger:
            n10 = _np.zeros(shape)
            n11 = p * (s00 + s01 + s10 + s11)
        else:
            n10 = p * s00
            n11 = p * (s01 + s10 + s11)
        s00, s01, s10, s11 = n00, n01, n10, n11
    return s01 + s11


def _chain_dp_float(probs, satisfied_by_first, satisfied_by_last) -> float:
    """Scalar float DP — the numpy-free fallback for one group."""
    m = len(probs)
    s00, s01, s10, s11 = 1.0, 0.0, 0.0, 0.0
    for j in range(m):
        p = probs[j]
        q = 1.0 - p
        trigger = (j == 0 and satisfied_by_first) or (
            j == m - 1 and satisfied_by_last
        )
        n00 = q * (s00 + s10)
        n01 = q * (s01 + s11)
        if trigger:
            n10 = 0.0
            n11 = p * (s00 + s01 + s10 + s11)
        else:
            n10 = p * s00
            n11 = p * (s01 + s10 + s11)
        s00, s01, s10, s11 = n00, n01, n10, n11
    return s01 + s11


# ----------------------------------------------------------------------
# Exact backend: integer numerators over one common denominator
# ----------------------------------------------------------------------


def _interior_exact(a: int, b: int, cols: HColumns) -> Fraction:
    """Run touching neither endpoint: events independent across ``(x, y)``
    pairs; within a pair, a chain over ``S_a .. S_{b+1}``."""
    D = cols.denominator
    m = b - a + 2
    chains = [cols.s_num[i - 1] for i in range(a, b + 2)]
    groups = cols.layout.nx * cols.layout.ny
    sat = _chain_sweep_int(chains, groups, D, False, False)
    scale = D**m
    miss_all = 1
    for s in sat:
        miss_all *= scale - s
    total = scale**groups
    return Fraction(total - miss_all, total)


def _left_exact(b: int, cols: HColumns) -> Fraction:
    """Run ``[0..b]`` (with ``b < k``): group by ``x``; conditioned on
    ``R(x)``, the per-``y`` chain over ``S_1..S_{b+1}`` is satisfied also
    by ``S_1`` alone."""
    D = cols.denominator
    nx, ny = cols.layout.nx, cols.layout.ny
    m = b + 1
    chains = [cols.s_num[i - 1] for i in range(1, b + 2)]
    sat_plain = _chain_sweep_int(chains, nx * ny, D, False, False)
    sat_fired = _chain_sweep_int(chains, nx * ny, D, True, False)
    scale = D**m
    scale_y = scale**ny
    per_x = scale_y * D
    miss_all = 1
    for x in range(nx):
        miss_plain = 1
        miss_fired = 1
        base = x * ny
        for y in range(ny):
            miss_plain *= scale - sat_plain[base + y]
            miss_fired *= scale - sat_fired[base + y]
        r = cols.r_num[x]
        hit = r * (scale_y - miss_fired) + (D - r) * (scale_y - miss_plain)
        miss_all *= per_x - hit
    total = per_x**nx
    return Fraction(total - miss_all, total)


def _right_exact(a: int, k: int, cols: HColumns) -> Fraction:
    """Run ``[a..k]`` (with ``a > 0``): the mirror image — group by ``y``;
    conditioned on ``T(y)``, the per-``x`` chain over ``S_a..S_k`` is
    satisfied also by ``S_k`` alone."""
    D = cols.denominator
    nx, ny = cols.layout.nx, cols.layout.ny
    m = k - a + 1
    chains = [cols.s_num[i - 1] for i in range(a, k + 1)]
    sat_plain = _chain_sweep_int(chains, nx * ny, D, False, False)
    sat_fired = _chain_sweep_int(chains, nx * ny, D, False, True)
    scale = D**m
    scale_x = scale**nx
    per_y = scale_x * D
    miss_all = 1
    for y in range(ny):
        miss_plain = 1
        miss_fired = 1
        for x in range(nx):
            position = x * ny + y
            miss_plain *= scale - sat_plain[position]
            miss_fired *= scale - sat_fired[position]
        t = cols.t_num[y]
        hit = t * (scale_x - miss_fired) + (D - t) * (scale_x - miss_plain)
        miss_all *= per_y - hit
    total = per_y**ny
    return Fraction(total - miss_all, total)


# ----------------------------------------------------------------------
# Float backend: numpy column sweeps (group loops without numpy)
# ----------------------------------------------------------------------


def _interior_float(a: int, b: int, cols: HColumns) -> float:
    if _np is not None:
        chains = _np.stack([cols.s_float[i - 1] for i in range(a, b + 2)])
        sat = _chain_sweep_float(chains, False, False)
        return float(1.0 - _np.prod(1.0 - sat))
    miss_all = 1.0
    nx, ny = cols.layout.nx, cols.layout.ny
    for x in range(nx):
        for y in range(ny):
            chain = [cols.s_float[i - 1][x][y] for i in range(a, b + 2)]
            miss_all *= 1.0 - _chain_dp_float(chain, False, False)
    return 1.0 - miss_all


def _left_float(b: int, cols: HColumns) -> float:
    if _np is not None:
        chains = _np.stack([cols.s_float[i - 1] for i in range(1, b + 2)])
        sat_plain = _chain_sweep_float(chains, False, False)
        sat_fired = _chain_sweep_float(chains, True, False)
        miss_plain = _np.prod(1.0 - sat_plain, axis=1)
        miss_fired = _np.prod(1.0 - sat_fired, axis=1)
        r = cols.r_float
        hit = r * (1.0 - miss_fired) + (1.0 - r) * (1.0 - miss_plain)
        return float(1.0 - _np.prod(1.0 - hit))
    miss_all = 1.0
    nx, ny = cols.layout.nx, cols.layout.ny
    for x in range(nx):
        miss_plain = 1.0
        miss_fired = 1.0
        for y in range(ny):
            chain = [cols.s_float[i - 1][x][y] for i in range(1, b + 2)]
            miss_plain *= 1.0 - _chain_dp_float(chain, False, False)
            miss_fired *= 1.0 - _chain_dp_float(chain, True, False)
        r = cols.r_float[x]
        hit = r * (1.0 - miss_fired) + (1.0 - r) * (1.0 - miss_plain)
        miss_all *= 1.0 - hit
    return 1.0 - miss_all


def _right_float(a: int, k: int, cols: HColumns) -> float:
    if _np is not None:
        chains = _np.stack([cols.s_float[i - 1] for i in range(a, k + 1)])
        sat_plain = _chain_sweep_float(chains, False, False)
        sat_fired = _chain_sweep_float(chains, False, True)
        miss_plain = _np.prod(1.0 - sat_plain, axis=0)
        miss_fired = _np.prod(1.0 - sat_fired, axis=0)
        t = cols.t_float
        hit = t * (1.0 - miss_fired) + (1.0 - t) * (1.0 - miss_plain)
        return float(1.0 - _np.prod(1.0 - hit))
    miss_all = 1.0
    nx, ny = cols.layout.nx, cols.layout.ny
    for y in range(ny):
        miss_plain = 1.0
        miss_fired = 1.0
        for x in range(nx):
            chain = [cols.s_float[i - 1][x][y] for i in range(a, k + 1)]
            miss_plain *= 1.0 - _chain_dp_float(chain, False, False)
            miss_fired *= 1.0 - _chain_dp_float(chain, False, True)
        t = cols.t_float[y]
        hit = t * (1.0 - miss_fired) + (1.0 - t) * (1.0 - miss_plain)
        miss_all *= 1.0 - hit
    return 1.0 - miss_all


# ----------------------------------------------------------------------
# Fraction fallback (the pre-columnar reference implementation; used
# when the exact common denominator overflows 64 bits)
# ----------------------------------------------------------------------


def _domain_sides(tid: TupleIndependentDatabase, k: int) -> tuple[list, list]:
    """The x-side and y-side active domains (elements appearing in the
    relevant positions of ``R``, ``T`` and the ``S_i``)."""
    xs: set = set()
    ys: set = set()
    instance = tid.instance
    for tuple_id in instance.tuple_ids():
        if tuple_id.relation == "R":
            xs.add(tuple_id.values[0])
        elif tuple_id.relation == "T":
            ys.add(tuple_id.values[0])
        elif tuple_id.relation.startswith("S"):
            xs.add(tuple_id.values[0])
            ys.add(tuple_id.values[1])
    del k
    return sorted(xs, key=repr), sorted(ys, key=repr)


def _tuple_probability(
    tid: TupleIndependentDatabase, relation: str, values: tuple
) -> Fraction:
    """``pi`` of a potential tuple; absent tuples have probability 0."""
    from repro.db.relation import TupleId

    if not tid.instance.has(relation, values):
        return Fraction(0)
    return tid.probability_of(TupleId(relation, values))


def _interior_run_fractions(
    a: int, b: int, tid: TupleIndependentDatabase, xs: list, ys: list
) -> Fraction:
    miss_all = Fraction(1)
    for x in xs:
        for y in ys:
            chain = [
                _tuple_probability(tid, f"S{i}", (x, y))
                for i in range(a, b + 2)
            ]
            miss_all *= 1 - chain_probability(chain)
    return 1 - miss_all


def _left_run_fractions(
    b: int, tid: TupleIndependentDatabase, xs: list, ys: list
) -> Fraction:
    miss_all = Fraction(1)
    for x in xs:
        p_r = _tuple_probability(tid, "R", (x,))
        miss_without_r = Fraction(1)
        miss_with_r = Fraction(1)
        for y in ys:
            chain = [
                _tuple_probability(tid, f"S{i}", (x, y))
                for i in range(1, b + 2)
            ]
            miss_without_r *= 1 - chain_probability(chain)
            miss_with_r *= 1 - chain_probability(
                chain, satisfied_by_first=True
            )
        hit_x = p_r * (1 - miss_with_r) + (1 - p_r) * (1 - miss_without_r)
        miss_all *= 1 - hit_x
    return 1 - miss_all


def _right_run_fractions(
    a: int, k: int, tid: TupleIndependentDatabase, xs: list, ys: list
) -> Fraction:
    miss_all = Fraction(1)
    for y in ys:
        p_t = _tuple_probability(tid, "T", (y,))
        miss_without_t = Fraction(1)
        miss_with_t = Fraction(1)
        for x in xs:
            chain = [
                _tuple_probability(tid, f"S{i}", (x, y))
                for i in range(a, k + 1)
            ]
            miss_without_t *= 1 - chain_probability(chain)
            miss_with_t *= 1 - chain_probability(
                chain, satisfied_by_last=True
            )
        hit_y = p_t * (1 - miss_with_t) + (1 - p_t) * (1 - miss_without_t)
        miss_all *= 1 - hit_y
    return 1 - miss_all


def _run_probability_fractions(
    run: tuple[int, int],
    k: int,
    tid: TupleIndependentDatabase,
    sides: tuple[list, list] | None = None,
) -> Fraction:
    a, b = run
    xs, ys = sides if sides is not None else _domain_sides(tid, k)
    if a == 0:
        return _left_run_fractions(b, tid, xs, ys)
    if b == k:
        return _right_run_fractions(a, k, tid, xs, ys)
    return _interior_run_fractions(a, b, tid, xs, ys)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def _check_run(run: tuple[int, int], k: int) -> None:
    a, b = run
    if not 0 <= a <= b <= k:
        raise ValueError(f"run {run} out of bounds for k = {k}")
    if a == 0 and b == k:
        raise UnsafeSubqueryError(
            "the full disjunction h_{k,0} ∨ ... ∨ h_{k,k} is #P-hard and "
            "has no safe plan"
        )


def run_probability(
    run: tuple[int, int],
    k: int,
    tid: TupleIndependentDatabase,
    *,
    columns: HColumns | None = None,
) -> Fraction:
    """``Pr(∨_{i in [a..b]} h_{k,i})`` for one maximal run, by the lifted
    plan described in the module docstring — exact, on the integer
    common-denominator backend over the TID's columnar view (pass
    ``columns`` to reuse a view the caller already holds).

    :raises UnsafeSubqueryError: if the run is all of ``{0..k}``.
    """
    _check_run(run, k)
    a, b = run
    cols = columns if columns is not None else h_columns(tid, k)
    if cols.denominator is None:  # exotic denominators: Fraction fallback
        # The layout's sorted domains are the ones _domain_sides would
        # recompute; reuse them so per-run fallbacks never rescan.
        return _run_probability_fractions(
            run, k, tid, (list(cols.layout.xs), list(cols.layout.ys))
        )
    if a == 0:
        return _left_exact(b, cols)
    if b == k:
        return _right_exact(a, k, cols)
    return _interior_exact(a, b, cols)


def run_probability_float(
    run: tuple[int, int],
    k: int,
    tid: TupleIndependentDatabase,
    *,
    columns: HColumns | None = None,
) -> float:
    """The float backend of :func:`run_probability`: one vectorized sweep
    over the columnar view (numpy when importable, per-group scans
    otherwise).

    :raises UnsafeSubqueryError: if the run is all of ``{0..k}``.
    """
    _check_run(run, k)
    a, b = run
    cols = columns if columns is not None else h_columns(tid, k)
    if a == 0:
        return _left_float(b, cols)
    if b == k:
        return _right_float(a, k, cols)
    return _interior_float(a, b, cols)


def disjunction_probability(
    indices: Iterable[int],
    k: int,
    tid: TupleIndependentDatabase,
    *,
    columns: HColumns | None = None,
) -> Fraction:
    """``Pr(∨_{i in S} h_{k,i})`` for a proper subset ``S ⊊ {0..k}`` — or
    for the empty set, where the probability is 0.

    :raises UnsafeSubqueryError: if ``S = {0..k}``.
    """
    index_set = set(indices)
    if not index_set:
        return Fraction(0)
    if not index_set <= set(range(k + 1)):
        raise ValueError(f"indices {sorted(index_set)} out of range for k={k}")
    cols = columns if columns is not None else h_columns(tid, k)
    miss_all = Fraction(1)
    for run in runs_of(index_set):
        miss_all *= 1 - run_probability(run, k, tid, columns=cols)
    return 1 - miss_all


def disjunction_probability_float(
    indices: Iterable[int],
    k: int,
    tid: TupleIndependentDatabase,
    *,
    columns: HColumns | None = None,
) -> float:
    """The float backend of :func:`disjunction_probability`.

    :raises UnsafeSubqueryError: if ``S = {0..k}``.
    """
    index_set = set(indices)
    if not index_set:
        return 0.0
    if not index_set <= set(range(k + 1)):
        raise ValueError(f"indices {sorted(index_set)} out of range for k={k}")
    cols = columns if columns is not None else h_columns(tid, k)
    miss_all = 1.0
    for run in runs_of(index_set):
        miss_all *= 1.0 - run_probability_float(run, k, tid, columns=cols)
    return 1.0 - miss_all

"""Approximate probabilistic query evaluation (the fourth engine),
vectorized.

The dichotomy leaves the non-zero-Euler H-queries #P-hard, but hardness is
about *exact* computation: the standard practical recourse — and the one
probabilistic-database systems actually ship — is randomized approximation.
Two estimators are provided, each in a scalar and a vectorized form:

* *Monte Carlo* — draw worlds from the TID distribution and average the
  query's indicator.  Unbiased, additive error ``O(1/sqrt(samples))``;
  useless for tiny probabilities.  Scalar:
  :func:`monte_carlo_probability`; vectorized: the ``monte_carlo`` route
  of :class:`SamplingPlan` / :func:`monte_carlo_probability_vectorized`.

* *Karp–Luby* — the importance sampler on the monotone DNF lineage:
  sample a witness-clause proportionally to its weight, complete it to a
  world, and count the fraction of samples where the sampled clause is
  the *canonical* (first) satisfied one.  Scaled by the union bound, this
  is unbiased with *relative* error guarantees — an FPRAS for UCQ
  lineages, hard queries included.  Scalar:
  :func:`karp_luby_probability`; vectorized: the ``karp_luby`` route.

The scalar samplers run per-sample Python loops off a ``random.Random``
(kept as the compatibility and no-dependency baseline).  The vectorized
engine replaces both loops with batched substrates:

* **world sampling** — a seeded counter-based integer draw stream
  (:class:`repro.db.tid.WorldSampler`) materialized as a
  ``samples × tuples`` 0/1 matrix, numpy path and pure-Python fallback
  bit-identical, per-tuple draws exactly ``Bernoulli(p)`` by integer
  rejection (PR 3's exact-draw semantics, batched);
* **indicator evaluation** — UCQ lineages go through a clause-incidence
  bit-matrix (a grouped gather + ``all``/first-satisfied reduction over
  the world matrix); non-monotone lineages compile once to the naive
  lineage circuit and run
  :meth:`repro.circuits.evaluator.EvaluationTape.evaluate_worlds`, the
  Boolean tape backend, instead of re-grounding the query per world;
* **clause selection** — integer common-denominator prefix sums searched
  with ``searchsorted`` (strict-boundary convention of :func:`_bisect`),
  conditioned world completion and first-satisfied-clause detection as
  matrix ops;
* **budget-adaptive estimation** — :meth:`SamplingPlan.run` samples in
  doubling waves until the :class:`AccuracyBudget`'s half-width target is
  met.  The counter-addressed stream gives a *prefix property*: the first
  ``n`` samples are the same integers under any wave schedule, so an
  adaptive run that stops at ``n`` equals a fixed-count run of ``n``
  bit for bit.

Estimates carry a (normal-approximation or Wilson) half-width so tests
and benches can assert statistically, never exactly.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache

from repro.circuits.evaluator import EvaluationTape, tape_for
from repro.core.deadline import Deadline
from repro.db.relation import Instance, TupleId
from repro.db.tid import (
    DrawStream,
    TupleIndependentDatabase,
    WorldSampler,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.hqueries import HQuery
from repro.queries.lineage import hquery_lineage_circuit_naive
from repro.queries.ucq import UnionOfCQs, hquery_to_ucq

try:  # numpy is optional: every vectorized path has a pure-Python twin.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

#: Normal-approximation z-score behind every ~95% half-width; the
#: :class:`AccuracyBudget` arithmetic must match it.
Z_95 = 1.96

#: Stream lanes: world-cell draws and clause-selection draws live on
#: disjoint counter sequences of the same seed.
WORLD_LANE = 0
CLAUSE_LANE = 1

#: Samples per block in the vectorized waves: bounds the working-set
#: memory of the gathered clause-incidence tensors without changing any
#: draw (the stream is counter-addressed).
_WAVE_CHUNK = 2048

_INTERVALS = ("normal", "wilson")


@dataclass(frozen=True)
class AccuracyBudget:
    """How much accuracy a sampled answer must buy, per request.

    ``epsilon`` is the target ~95% half-width of the estimate.  The
    worst-case sample size is the normal approximation over the
    indicator's variance, ``n = ceil((Z_95 / (2 * epsilon))**2)``,
    clamped to ``[min_samples, max_samples]``.  For the Monte-Carlo
    estimator that bounds the *absolute* half-width by ``epsilon``; for
    Karp–Luby the half-width scales with the union-bound weight ``W``,
    so ``epsilon`` bounds the error *relative to W* — the relative-error
    regime that makes Karp–Luby an FPRAS.

    ``adaptive`` (the default) samples in doubling waves and stops as
    soon as the (Wilson, robust-at-extremes) half-width meets the
    target, never exceeding the fixed-count worst case ``samples()``;
    ``adaptive=False`` always draws exactly ``samples()``.  Thanks to
    the counter-addressed draw stream both modes agree bit for bit on
    any common sample prefix.

    ``interval`` selects the *reported* half-width: ``"normal"`` (the
    default; exactly 0.0 at 0 or n hits) or ``"wilson"`` (asymmetric,
    never degenerate at the extremes).

    ``seed`` makes the answer deterministic: a request re-submitted with
    the same budget draws the same sample path, so shard workers (and
    retries) can rely on reproducible estimates.

    ``delta`` is the interval's miss probability (confidence
    ``1 - delta``); the default 0.05 reproduces the historical ~95%
    :data:`Z_95` arithmetic bit for bit (:meth:`z` returns the constant
    exactly there, a computed quantile otherwise).

    Construction validates every field eagerly — a bad ``epsilon`` or
    ``delta`` fails here with a clear :class:`ValueError`, not later as
    a division error or an infinite wave loop inside a shard worker.
    """

    epsilon: float = 0.05
    min_samples: int = 100
    max_samples: int = 50_000
    seed: int = 0
    adaptive: bool = True
    interval: str = "normal"
    delta: float = 0.05

    def __post_init__(self) -> None:
        if not (
            isinstance(self.epsilon, (int, float))
            and math.isfinite(self.epsilon)
            and 0 < self.epsilon < 1
        ):
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon!r}")
        if not (
            isinstance(self.delta, (int, float))
            and math.isfinite(self.delta)
            and 0 < self.delta < 1
        ):
            raise ValueError(f"delta must be in (0, 1), got {self.delta!r}")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be positive, got {self.min_samples}"
            )
        if self.max_samples < self.min_samples:
            raise ValueError(
                f"max_samples {self.max_samples} below min_samples "
                f"{self.min_samples}"
            )
        if self.interval not in _INTERVALS:
            raise ValueError(
                f"interval must be one of {_INTERVALS}, got "
                f"{self.interval!r}"
            )

    def z(self) -> float:
        """The two-sided normal quantile of this budget's confidence —
        exactly :data:`Z_95` at the default ``delta=0.05``."""
        return _z_for_delta(self.delta)

    def samples(self) -> int:
        """The fixed-count sample size this budget purchases (see class
        docstring) — also the cap of the adaptive schedule."""
        worst_case = math.ceil((self.z() / (2 * self.epsilon)) ** 2)
        return max(self.min_samples, min(self.max_samples, worst_case))


@lru_cache(maxsize=64)
def _z_for_delta(delta: float) -> float:
    """``z`` with ``P(|N(0,1)| <= z) = 1 - delta``.

    ``delta=0.05`` returns the historical :data:`Z_95` constant exactly
    (every pre-``delta`` half-width pinned in tests and benches used it,
    and 1.96 is the convention, not the 1.95996... quantile).  Other
    deltas invert ``erf`` numerically: Winitzki's approximation as the
    initial guess, then Newton steps on :func:`math.erf` — accurate to
    ~1e-12 with no scipy dependency.
    """
    if delta == 0.05:
        return Z_95
    target = 1.0 - delta  # erf(z / sqrt(2)) = 1 - delta
    a = 0.147  # Winitzki's constant
    log_term = math.log(1.0 - target * target)
    t = 2.0 / (math.pi * a) + log_term / 2.0
    y = math.sqrt(math.sqrt(t * t - log_term / a) - t)
    for _ in range(4):
        y -= (
            (math.erf(y) - target)
            * math.sqrt(math.pi) / 2.0 * math.exp(y * y)
        )
    return y * math.sqrt(2.0)


@dataclass(frozen=True)
class Estimate:
    """A randomized estimate with an error bar.

    ``interval`` records which construction produced ``half_width``
    (``"normal"`` or ``"wilson"``); ``waves`` how many sampling waves an
    adaptive run took (1 for fixed-count runs, 0 for degenerate
    zero-lineage answers that drew nothing).
    """

    value: float
    half_width: float
    samples: int
    interval: str = "normal"
    waves: int = 1

    def covers(self, truth: float) -> bool:
        """Whether the (~95%) interval contains the given value."""
        return abs(self.value - truth) <= self.half_width


def _wilson_bounds(
    hits: int, samples: int, z: float = Z_95
) -> tuple[float, float]:
    """The Wilson score interval for ``hits / samples`` at quantile
    ``z`` (~95% at the default)."""
    z2 = z * z
    p = hits / samples
    denominator = 1 + z2 / samples
    center = (p + z2 / (2 * samples)) / denominator
    half = (
        z
        * math.sqrt(p * (1 - p) / samples + z2 / (4 * samples * samples))
        / denominator
    )
    return center - half, center + half


def half_width(
    hits: int,
    samples: int,
    scale: float = 1.0,
    interval: str = "normal",
    z: float = Z_95,
) -> float:
    """The half-width of ``scale * hits / samples`` at quantile ``z``
    (the ~95% :data:`Z_95` by default).

    ``"normal"`` is the classic normal approximation
    ``z * scale * sqrt(p(1-p)/n)`` — *exactly* 0.0 when ``hits`` is 0 or
    ``samples`` (the old ``max(p(1-p), 1e-12)`` floor manufactured a
    phantom nonzero width there, misreporting perfectly deterministic
    outcomes).  ``"wilson"`` returns the largest distance from the point
    estimate to the Wilson score bounds, which stays honest (nonzero) at
    the extremes — the width the adaptive sampler's stopping rule uses.
    """
    if samples <= 0:
        return 0.0
    if interval == "wilson":
        low, high = _wilson_bounds(hits, samples, z)
        p = hits / samples
        return scale * max(high - p, p - low)
    if interval != "normal":
        raise ValueError(
            f"interval must be one of {_INTERVALS}, got {interval!r}"
        )
    if hits == 0 or hits == samples:
        return 0.0
    p = hits / samples
    return z * scale * math.sqrt(p * (1 - p) / samples)


# ----------------------------------------------------------------------
# Scalar samplers (random.Random-driven; the compatibility baseline)
# ----------------------------------------------------------------------


def monte_carlo_probability(
    query: HQuery,
    tid: TupleIndependentDatabase,
    samples: int,
    rng: random.Random,
    interval: str = "normal",
) -> Estimate:
    """Naive scalar Monte Carlo: average the indicator over sampled
    worlds.

    Works for *any* H-query (monotone or not) since it only evaluates the
    query per world.  The per-tuple ``(numerator, denominator)`` pairs
    are hoisted out of the sample loop, but each draw is still the exact
    integer draw of :func:`repro.db.tid.exact_bernoulli` in
    ``tuple_ids()`` order — the fixed-seed sample path is unchanged.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    instance = tid.instance
    draws = [
        (t, p.numerator, p.denominator)
        for t in instance.tuple_ids()
        for p in (tid.probability_of(t),)
    ]
    randrange = rng.randrange
    hits = 0
    for _ in range(samples):
        world = frozenset(
            t
            for t, numerator, denominator in draws
            if randrange(denominator) < numerator
        )
        if query.holds_in(instance.restrict_to(world)):
            hits += 1
    return Estimate(
        hits / samples,
        half_width(hits, samples, 1.0, interval),
        samples,
        interval,
    )


def karp_luby_probability(
    query: HQuery,
    tid: TupleIndependentDatabase,
    samples: int,
    rng: random.Random,
    interval: str = "normal",
) -> Estimate:
    """Scalar Karp–Luby on the monotone DNF lineage of a UCQ H-query.

    Let the lineage be ``C_1 ∨ ... ∨ C_m`` with clause weights
    ``w_i = prod of tuple probabilities in C_i`` and ``W = sum w_i``.
    Sample a clause ``i`` with probability ``w_i / W``, then a world
    conditioned on ``C_i`` being present (the other tuples independent).
    The estimator averages the indicator "``i`` is the *first* satisfied
    clause in this world", and ``Pr = W * E[indicator]`` — unbiased, with
    the indicator's variance bounded away from the small-probability
    trap.

    First-satisfied-clause detection runs off a precomputed per-tuple →
    clause incidence: each present tuple bumps only the clauses it
    occurs in (stamp-reset counters, no per-sample ``O(m)`` scan and no
    per-clause subset test), and the minimum fully-covered clause index
    falls out of the bumps.  The ``rng`` draw sequence — one clause draw
    then one ``randrange(denominator)`` per unforced tuple — is
    unchanged, so fixed-seed estimates match the pre-incidence sampler
    exactly.

    :raises ValueError: if the query is not a UCQ (no monotone DNF
        lineage) or its lineage is empty.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    structure = _clause_structure(query, tid.instance)
    if structure is None:
        raise ValueError("Karp–Luby needs a monotone (UCQ) query")
    numerators, denominators = _probability_columns(tid)
    weights = _clause_weights(structure, tid)
    cumulative, total_weight = _cumulative_weights(weights)
    if not structure.clauses or total_weight == 0:
        return Estimate(0.0, 0.0, samples, interval, 0)
    clause_count = len(structure.clauses)
    sizes = structure.sizes
    incidence = structure.incidence
    positions = structure.positions
    counts = [0] * clause_count
    stamps = [-1] * clause_count
    randrange = rng.randrange
    hits = 0
    for sample in range(samples):
        draw = randrange(cumulative[-1])
        index = _bisect(cumulative, draw)
        forced = positions[index]
        first = clause_count
        # Count clause coverage as tuples turn up present: forced tuples
        # first (mirroring the old ``set(forced)`` world seed), then the
        # independent completions in tuple order — the draw stream the
        # fixed-seed regression suite pins.
        for position in forced:
            for j in incidence[position]:
                if stamps[j] != sample:
                    stamps[j] = sample
                    counts[j] = 1
                else:
                    counts[j] += 1
                if counts[j] == sizes[j] and j < first:
                    first = j
        forced_set = structure.position_sets[index]
        for position in range(len(numerators)):
            if position in forced_set:
                continue
            if randrange(denominators[position]) < numerators[position]:
                for j in incidence[position]:
                    if stamps[j] != sample:
                        stamps[j] = sample
                        counts[j] = 1
                    else:
                        counts[j] += 1
                    if counts[j] == sizes[j] and j < first:
                        first = j
        if first == index:
            hits += 1
    scale = float(total_weight)
    return Estimate(
        scale * (hits / samples),
        half_width(hits, samples, scale, interval),
        samples,
        interval,
    )


def _bisect(cumulative: list[int], needle: int) -> int:
    """The index of the first prefix sum *strictly* greater than the draw.

    Clause ``i`` owns the half-open draw interval
    ``[cumulative[i-1], cumulative[i])``, so a draw exactly equal to a
    prefix boundary selects the *next* clause — the convention matching
    uniform integer draws in ``[0, cumulative[-1])``, where each clause's
    interval has exactly ``w_i * D`` integers, and zero-weight clauses
    (empty intervals) are unreachable.  Equivalent to
    :func:`bisect.bisect_right` and to numpy's
    ``searchsorted(side="right")``, which the vectorized sampler uses.
    """
    low, high = 0, len(cumulative) - 1
    while low < high:
        middle = (low + high) // 2
        if cumulative[middle] <= needle:
            low = middle + 1
        else:
            high = middle
    return low


# ----------------------------------------------------------------------
# Shared lineage structure (cached per query on the instance)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ClauseStructure:
    """The probability-free part of a UCQ lineage, in canonical clause
    order: clause tuple-sets, their positions in ``tuple_ids()`` order,
    per-position clause incidence, and size groups for the vectorized
    first-satisfied reduction.  Cached via
    :meth:`~repro.db.relation.Instance.cached_derivation`, so every
    sampler (scalar, vectorized, serving microbatches) over the same
    instance shares one copy."""

    tuple_ids: tuple[TupleId, ...]
    clauses: tuple[frozenset, ...]
    positions: tuple[tuple[int, ...], ...]
    position_sets: tuple[frozenset, ...]
    sizes: tuple[int, ...]
    incidence: tuple[tuple[int, ...], ...]
    #: clauses grouped by size: ``(size, clause ids, position lists)``
    size_groups: tuple[tuple[int, tuple[int, ...], tuple], ...]


def _as_union(query):
    """``query`` as a :class:`~repro.queries.ucq.UnionOfCQs`: UCQs and
    CQs pass through (they are their own monotone DNF), monotone
    h-queries translate, non-monotone ones return ``None``."""
    if isinstance(query, UnionOfCQs):
        return query
    if isinstance(query, ConjunctiveQuery):
        return UnionOfCQs((query,))
    if not query.is_ucq():
        return None
    return hquery_to_ucq(query)


def _clause_structure(
    query, instance: Instance
) -> _ClauseStructure | None:
    """The cached clause structure of a monotone query's lineage
    (h-query, UCQ or CQ), or ``None`` for non-monotone queries."""
    if _as_union(query) is None:
        return None

    def build(db: Instance) -> _ClauseStructure:
        ucq = _as_union(query)
        # Canonical clause order: sort by the clauses' sorted TupleId
        # tuples, not by repr — a frozenset's repr follows its
        # hash-salted iteration order, which would make the fixed-seed
        # sample path (and thus every "same seed, same estimate"
        # guarantee) vary per process.
        clauses = tuple(
            sorted(ucq.grounding_sets(db), key=lambda clause: sorted(clause))
        )
        tuple_ids = tuple(db.tuple_ids())
        index_of = {t: i for i, t in enumerate(tuple_ids)}
        positions = tuple(
            tuple(sorted(index_of[t] for t in clause)) for clause in clauses
        )
        incidence: list[list[int]] = [[] for _ in tuple_ids]
        for j, clause_positions in enumerate(positions):
            for position in clause_positions:
                incidence[position].append(j)
        by_size: dict[int, list[int]] = {}
        for j, clause_positions in enumerate(positions):
            by_size.setdefault(len(clause_positions), []).append(j)
        size_groups = []
        for size, ids in sorted(by_size.items()):
            matrix = tuple(positions[j] for j in ids)
            if _np is not None:
                ids_arr = _np.array(ids, dtype=_np.int64)
                matrix = (
                    _np.array(matrix, dtype=_np.int64)
                    if size
                    else _np.empty((len(ids), 0), dtype=_np.int64)
                )
                size_groups.append((size, ids_arr, matrix))
            else:
                size_groups.append((size, tuple(ids), matrix))
        return _ClauseStructure(
            tuple_ids=tuple_ids,
            clauses=clauses,
            positions=positions,
            position_sets=tuple(frozenset(p) for p in positions),
            sizes=tuple(len(p) for p in positions),
            incidence=tuple(tuple(c) for c in incidence),
            size_groups=tuple(size_groups),
        )

    return instance.cached_derivation(("approximate.clauses", query), build)


def _indicator_tape(
    query: HQuery, instance: Instance
) -> tuple[EvaluationTape, tuple[int, ...]]:
    """The cached naive-lineage tape of a (possibly non-monotone) query
    plus the ``tuple_ids()``-order column of each tape slot.  The circuit
    is only ever evaluated with Boolean semantics
    (:meth:`~repro.circuits.evaluator.EvaluationTape.evaluate_worlds`),
    so it does not need to be a d-D — which a hard query's lineage never
    is."""

    def build(db: Instance):
        circuit = hquery_lineage_circuit_naive(query, db)
        tape = tape_for(circuit)
        index_of = {t: i for i, t in enumerate(db.tuple_ids())}
        columns = tuple(index_of[label] for label in tape.var_labels)
        # Keep the circuit alive: tape_for memoizes weakly per circuit.
        return (circuit, tape, columns)

    _, tape, columns = instance.cached_derivation(
        ("approximate.indicator_tape", query), build
    )
    return tape, columns


def _probability_columns(
    tid: TupleIndependentDatabase,
) -> tuple[list[int], list[int]]:
    """Per-tuple ``(numerator, denominator)`` columns in ``tuple_ids()``
    order — the probability map hoisted once per plan/sampler."""
    numerators: list[int] = []
    denominators: list[int] = []
    for t in tid.instance.tuple_ids():
        p = tid.probability_of(t)
        numerators.append(p.numerator)
        denominators.append(p.denominator)
    return numerators, denominators


def _clause_weights(
    structure: _ClauseStructure, tid: TupleIndependentDatabase
) -> list[Fraction]:
    probabilities = [
        tid.probability_of(t) for t in structure.tuple_ids
    ]
    weights = []
    for clause_positions in structure.positions:
        w = Fraction(1)
        for position in clause_positions:
            w *= probabilities[position]
        weights.append(w)
    return weights


def _cumulative_weights(
    weights: list[Fraction],
) -> tuple[list[int], Fraction]:
    """Integer prefix sums of the weights over one common denominator —
    clause selection must be *exactly* proportional, so draws are uniform
    integers below the total, never float grid points."""
    if not weights:
        return [], Fraction(0)
    denominator = math.lcm(*(w.denominator for w in weights))
    cumulative: list[int] = []
    running = 0
    for w in weights:
        running += w.numerator * (denominator // w.denominator)
        cumulative.append(running)
    return cumulative, sum(weights, Fraction(0))


# ----------------------------------------------------------------------
# The vectorized sampling engine
# ----------------------------------------------------------------------


class SamplingPlan:
    """Everything one hard query needs to be sampled over one TID: the
    route (``"karp_luby"`` for UCQs, ``"monte_carlo"`` otherwise), the
    cached lineage structure, and the hoisted probability columns.

    A plan is cheap to build (the clause structure / indicator tape are
    shared per ``(query, instance content)`` through
    ``Instance.cached_derivation``; the numeric columns are one pass over
    the probability map) and deterministic to run: estimates depend only
    on the budget's seed, never on wave boundaries, batch composition or
    numpy availability.
    """

    def __init__(
        self,
        query: HQuery,
        tid: TupleIndependentDatabase,
        engine: str | None = None,
    ):
        """``engine=None`` routes by the query's shape: ``"karp_luby"``
        for UCQs, ``"monte_carlo"`` otherwise.  An explicit
        ``engine="monte_carlo"`` forces the Monte-Carlo estimator on a
        monotone query too (its clause structure then doubles as the
        satisfied-any indicator); ``engine="karp_luby"`` on a
        non-monotone query raises (no monotone DNF lineage exists)."""
        self.query = query
        self.tid = tid
        self._structure = _clause_structure(query, tid.instance)
        if engine is None:
            engine = (
                "karp_luby" if self._structure is not None
                else "monte_carlo"
            )
        elif engine not in ("karp_luby", "monte_carlo"):
            raise ValueError(f"unknown sampling engine {engine!r}")
        elif engine == "karp_luby" and self._structure is None:
            raise ValueError("Karp–Luby needs a monotone (UCQ) query")
        self.engine = engine
        self._numerators, self._denominators = _probability_columns(tid)
        self._probabilities = [
            Fraction(n, d)
            for n, d in zip(self._numerators, self._denominators)
        ]
        self._weights: list[Fraction] = []
        self._cumulative: list[int] = []
        self._total_weight = Fraction(0)
        self._tape = None
        self._tape_columns = None
        if engine == "karp_luby":
            self._weights = _clause_weights(self._structure, tid)
            self._cumulative, self._total_weight = _cumulative_weights(
                self._weights
            )
        elif self._structure is None:
            self._tape, self._tape_columns = _indicator_tape(
                query, tid.instance
            )

    # -- public entry points -------------------------------------------

    def run(
        self,
        budget: AccuracyBudget | None = None,
        deadline: Deadline | None = None,
    ) -> Estimate:
        """Estimate under an accuracy budget: doubling waves until the
        Wilson half-width meets the target (``epsilon`` absolute for
        Monte Carlo, ``epsilon * W`` for Karp–Luby), capped at the
        budget's fixed-count ``samples()``; or exactly ``samples()`` when
        ``budget.adaptive`` is false.

        A ``deadline`` is checked cooperatively — at admission and
        before each wave — raising
        :class:`~repro.core.deadline.DeadlineExceeded` rather than
        starting work that cannot be used.  Checks sit *between* waves
        only, so a run that completes is untouched by its deadline: the
        estimate depends on ``(seed, budget)`` alone, never on the
        clock.
        """
        budget = budget if budget is not None else AccuracyBudget()
        if deadline is not None:
            deadline.check("sampling admission")
        cap = budget.samples()
        if self._degenerate():
            return Estimate(0.0, 0.0, 0, budget.interval, 0)
        scale = self._scale()
        z = budget.z()
        use_numpy = _np is not None
        if not budget.adaptive:
            hits = self._wave_hits(0, cap, budget.seed, use_numpy)
            return self._estimate(hits, cap, budget.interval, 1, z)
        target = budget.epsilon * scale
        samples = 0
        hits = 0
        waves = 0
        next_samples = min(budget.min_samples, cap)
        while True:
            hits += self._wave_hits(
                samples, next_samples - samples, budget.seed, use_numpy
            )
            samples = next_samples
            waves += 1
            if samples >= cap:
                break
            if half_width(hits, samples, scale, "wilson", z) <= target:
                break
            if deadline is not None:
                deadline.check("sampling wave")
            next_samples = min(cap, 2 * samples)
        return self._estimate(hits, samples, budget.interval, waves, z)

    def run_fixed(
        self,
        samples: int,
        seed: int = 0,
        interval: str = "normal",
        use_numpy: bool | None = None,
    ) -> Estimate:
        """A fixed-count estimate — by the stream's prefix property,
        identical to an adaptive run that happened to stop at the same
        sample count (``use_numpy`` selects the backend for the
        draws-identical regression tests; both produce the same bits)."""
        if samples <= 0:
            raise ValueError("samples must be positive")
        if self._degenerate():
            return Estimate(0.0, 0.0, samples, interval, 0)
        if use_numpy is None:
            use_numpy = _np is not None
        hits = self._wave_hits(0, samples, seed, use_numpy)
        return self._estimate(hits, samples, interval, 1)

    # -- internals ------------------------------------------------------

    def _degenerate(self) -> bool:
        return self.engine == "karp_luby" and (
            not self._structure.clauses or self._total_weight == 0
        )

    def _scale(self) -> float:
        return (
            float(self._total_weight)
            if self.engine == "karp_luby"
            else 1.0
        )

    def _estimate(
        self,
        hits: int,
        samples: int,
        interval: str,
        waves: int,
        z: float = Z_95,
    ) -> Estimate:
        scale = self._scale()
        return Estimate(
            scale * (hits / samples),
            half_width(hits, samples, scale, interval, z),
            samples,
            interval,
            waves,
        )

    def _wave_hits(
        self, start: int, count: int, seed: int, use_numpy: bool
    ) -> int:
        """Indicator hits over samples ``start .. start + count - 1``,
        chunked to bound working-set memory.  Draws are addressed by
        absolute sample index, so chunk and wave boundaries are
        invisible to the result."""
        sampler = WorldSampler(self._probabilities, seed, WORLD_LANE)
        hits = 0
        at = start
        remaining = count
        while remaining > 0:
            step = min(remaining, _WAVE_CHUNK)
            if self.engine == "karp_luby":
                hits += self._karp_luby_chunk(sampler, at, step, seed,
                                              use_numpy)
            else:
                hits += self._monte_carlo_chunk(sampler, at, step,
                                                use_numpy)
            at += step
            remaining -= step
        return hits

    def _monte_carlo_chunk(
        self, sampler: WorldSampler, start: int, count: int,
        use_numpy: bool,
    ) -> int:
        worlds = sampler.sample(start, count, use_numpy=use_numpy)
        if self._structure is not None:
            first = self._first_satisfied(worlds, count, use_numpy)
            clause_count = len(self._structure.clauses)
            if use_numpy and _np is not None:
                return int((first < clause_count).sum())
            return sum(1 for f in first if f < clause_count)
        columns = self._tape_columns
        if use_numpy and _np is not None:
            rows = worlds[:, list(columns)]
        else:
            rows = [[row[c] for c in columns] for row in worlds]
        return sum(self._tape.evaluate_worlds(rows))

    def _karp_luby_chunk(
        self,
        sampler: WorldSampler,
        start: int,
        count: int,
        seed: int,
        use_numpy: bool,
    ) -> int:
        structure = self._structure
        total = self._cumulative[-1]
        draws = DrawStream(seed, CLAUSE_LANE).below(
            total, start, count, use_numpy=use_numpy
        )
        if use_numpy and _np is not None and total < (1 << 63):
            cumulative = _np.array(self._cumulative, dtype=_np.int64)
            chosen = _np.searchsorted(
                cumulative,
                _np.asarray(draws, dtype=_np.int64),
                side="right",
            )
        else:
            chosen = [bisect_right(self._cumulative, d) for d in draws]
        worlds = sampler.sample(start, count, use_numpy=use_numpy)
        if use_numpy and _np is not None:
            chosen = _np.asarray(chosen, dtype=_np.int64)
            sizes = _np.array(structure.sizes, dtype=_np.int64)
            chosen_sizes = sizes[chosen]
            if int(chosen_sizes.sum()):
                rows = _np.repeat(
                    _np.arange(count, dtype=_np.int64), chosen_sizes
                )
                cols = _np.concatenate(
                    [
                        _np.array(structure.positions[c], dtype=_np.int64)
                        for c in chosen.tolist()
                    ]
                )
                worlds[rows, cols] = 1
            first = self._first_satisfied(worlds, count, use_numpy)
            return int((first == chosen).sum())
        hits = 0
        for s in range(count):
            index = chosen[s]
            row = worlds[s]
            for position in structure.positions[index]:
                row[position] = 1
            if self._first_satisfied_row(row) == index:
                hits += 1
        return hits

    def _first_satisfied(self, worlds, count: int, use_numpy: bool):
        """Per sample, the smallest satisfied clause index (``m`` when no
        clause is satisfied) — the clause-incidence bit-matrix
        reduction: gather each size group's clause columns out of the
        world matrix, ``all`` over the clause axis, and fold the minimum
        satisfied id."""
        structure = self._structure
        clause_count = len(structure.clauses)
        if use_numpy and _np is not None:
            first = _np.full(count, clause_count, dtype=_np.int64)
            for _, ids, matrix in structure.size_groups:
                satisfied = worlds[:, matrix].all(axis=2)
                # Within a size group the ids are ascending, so the first
                # satisfied column (argmax of the boolean row) is the
                # group's minimum satisfied clause id.
                position = satisfied.argmax(axis=1)
                candidate = _np.where(
                    satisfied.any(axis=1), ids[position], clause_count
                )
                _np.minimum(first, candidate, out=first)
            return first
        return [self._first_satisfied_row(row) for row in worlds]

    def _first_satisfied_row(self, row) -> int:
        """The pure-Python twin of :meth:`_first_satisfied` for one world
        row, off the per-tuple clause incidence."""
        structure = self._structure
        clause_count = len(structure.clauses)
        counts = [0] * clause_count
        sizes = structure.sizes
        first = clause_count
        for position, present in enumerate(row):
            if not present:
                continue
            for j in structure.incidence[position]:
                counts[j] += 1
                if counts[j] == sizes[j] and j < first:
                    first = j
        return first


def sampling_plan(
    query: HQuery, tid: TupleIndependentDatabase
) -> SamplingPlan:
    """The sampling plan for one ``(query, TID)`` pair (see
    :class:`SamplingPlan`; structural state is shared per instance
    content, so building plans per request is cheap)."""
    return SamplingPlan(query, tid)


def approximate_probability(
    query: HQuery,
    tid: TupleIndependentDatabase,
    budget: AccuracyBudget | None = None,
) -> tuple[Estimate, str]:
    """Estimate ``Pr(Q_phi)`` with the vectorized engine under an
    accuracy budget; returns ``(estimate, engine_label)`` where the label
    is ``"karp_luby"`` (UCQ) or ``"monte_carlo"`` (non-monotone)."""
    plan = sampling_plan(query, tid)
    return plan.run(budget), plan.engine


def karp_luby_probability_vectorized(
    query: HQuery,
    tid: TupleIndependentDatabase,
    samples: int,
    seed: int = 0,
    interval: str = "normal",
) -> Estimate:
    """Fixed-count vectorized Karp–Luby (see :class:`SamplingPlan`).

    :raises ValueError: if the query is not a UCQ.
    """
    plan = SamplingPlan(query, tid, engine="karp_luby")
    return plan.run_fixed(samples, seed, interval)


def monte_carlo_probability_vectorized(
    query: HQuery,
    tid: TupleIndependentDatabase,
    samples: int,
    seed: int = 0,
    interval: str = "normal",
) -> Estimate:
    """Fixed-count vectorized Monte Carlo (any H-query; see
    :class:`SamplingPlan`).  A monotone query runs the Monte-Carlo
    estimator too when asked: its clause structure doubles as the
    satisfied-any indicator."""
    plan = SamplingPlan(query, tid, engine="monte_carlo")
    return plan.run_fixed(samples, seed, interval)

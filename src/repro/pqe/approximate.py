"""Approximate probabilistic query evaluation (the fourth engine).

The dichotomy leaves the non-zero-Euler H-queries #P-hard, but hardness is
about *exact* computation: the standard practical recourse — and the one
probabilistic-database systems actually ship — is randomized approximation.
Two estimators are provided:

* :func:`monte_carlo_probability` — naive sampling: draw worlds from the
  TID distribution and average the query's indicator.  Unbiased, additive
  error ``O(1/sqrt(samples))``; useless for tiny probabilities.

* :func:`karp_luby_probability` — the Karp–Luby importance sampler on the
  monotone DNF lineage: sample a witness-clause proportionally to its
  weight, complete it to a world, and count the fraction of samples where
  the sampled clause is the *canonical* (first) satisfied one.  Scaled by
  the union bound, this is unbiased with *relative* error guarantees —
  an FPRAS for UCQ lineages, hard queries included.

Both return an estimate plus a (normal-approximation) half-width so tests
and benches can assert statistically, never exactly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction

from repro.db.relation import TupleId
from repro.db.tid import TupleIndependentDatabase, exact_bernoulli
from repro.queries.hqueries import HQuery
from repro.queries.ucq import hquery_to_ucq


@dataclass(frozen=True)
class Estimate:
    """A randomized estimate with a normal-approximation error bar."""

    value: float
    half_width: float
    samples: int

    def covers(self, truth: float) -> bool:
        """Whether the (~95%) interval contains the given value."""
        return abs(self.value - truth) <= self.half_width


def monte_carlo_probability(
    query: HQuery,
    tid: TupleIndependentDatabase,
    samples: int,
    rng: random.Random,
) -> Estimate:
    """Naive Monte Carlo: average the indicator over sampled worlds.

    Works for *any* H-query (monotone or not) since it only evaluates the
    query per world.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    hits = 0
    for _ in range(samples):
        world = tid.sample_world(rng)
        if query.holds_in(tid.instance.restrict_to(world)):
            hits += 1
    p = hits / samples
    half_width = 1.96 * math.sqrt(max(p * (1 - p), 1e-12) / samples)
    return Estimate(p, half_width, samples)


def karp_luby_probability(
    query: HQuery,
    tid: TupleIndependentDatabase,
    samples: int,
    rng: random.Random,
) -> Estimate:
    """Karp–Luby on the monotone DNF lineage of a UCQ H-query.

    Let the lineage be ``C_1 ∨ ... ∨ C_m`` with clause weights
    ``w_i = prod of tuple probabilities in C_i`` and ``W = sum w_i``.
    Sample a clause ``i`` with probability ``w_i / W``, then a world
    conditioned on ``C_i`` being present (the other tuples independent).
    The estimator averages the indicator "``i`` is the *first* satisfied
    clause in this world", and ``Pr = W * E[indicator]`` — unbiased, with
    the indicator's variance bounded away from the small-probability trap.

    :raises ValueError: if the query is not a UCQ (no monotone DNF
        lineage) or its lineage is empty.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    if not query.is_ucq():
        raise ValueError("Karp–Luby needs a monotone (UCQ) query")
    ucq = hquery_to_ucq(query)
    # Canonical clause order: sort by the clauses' sorted TupleId tuples,
    # not by repr — a frozenset's repr follows its hash-salted iteration
    # order, which would make the fixed-seed sample path (and thus every
    # "same seed, same estimate" guarantee) vary per process.
    clauses = sorted(
        ucq.grounding_sets(tid.instance), key=lambda clause: sorted(clause)
    )
    if not clauses:
        return Estimate(0.0, 0.0, samples)
    prob = tid.probability_map()
    weights = []
    for clause in clauses:
        w = Fraction(1)
        for tuple_id in clause:
            w *= prob[tuple_id]
        weights.append(w)
    total_weight = sum(weights, Fraction(0))
    if total_weight == 0:
        return Estimate(0.0, 0.0, samples)
    # Clause selection must be *exactly* proportional to the weights:
    # put the cumulative weights over one common denominator D, so the
    # prefix sums are integers n_1 <= ... <= n_m with n_m = W * D, and a
    # uniform integer draw in [0, n_m) selects clause i exactly when it
    # lands in [n_{i-1}, n_i) — probability (n_i - n_{i-1}) / n_m =
    # w_i / W, bit-free of float rounding.  (The previous
    # ``Fraction(rng.random()).limit_denominator(...)`` draw inherited
    # the 53-bit grid of ``random()``, which cannot represent thirds or
    # sevenths and so was biased for such weights.)
    denominator = math.lcm(*(w.denominator for w in weights))
    cumulative: list[int] = []
    running = 0
    for w in weights:
        running += w.numerator * (denominator // w.denominator)
        cumulative.append(running)

    all_tuples = tid.instance.tuple_ids()
    hits = 0
    for _ in range(samples):
        draw = rng.randrange(cumulative[-1])
        index = _bisect(cumulative, draw)
        forced = clauses[index]
        world: set[TupleId] = set(forced)
        for tuple_id in all_tuples:
            if tuple_id in forced:
                continue
            if exact_bernoulli(rng, prob[tuple_id]):
                world.add(tuple_id)
        # Is the sampled clause the first satisfied one?
        first = next(
            j
            for j, clause in enumerate(clauses)
            if clause <= world
        )
        if first == index:
            hits += 1
    fraction = hits / samples
    value = float(total_weight) * fraction
    half_width = (
        1.96
        * float(total_weight)
        * math.sqrt(max(fraction * (1 - fraction), 1e-12) / samples)
    )
    return Estimate(value, half_width, samples)


def _bisect(cumulative: list[int], needle: int) -> int:
    """The index of the first prefix sum *strictly* greater than the draw.

    Clause ``i`` owns the half-open draw interval
    ``[cumulative[i-1], cumulative[i])``, so a draw exactly equal to a
    prefix boundary selects the *next* clause — the convention matching
    uniform integer draws in ``[0, cumulative[-1])``, where each clause's
    interval has exactly ``w_i * D`` integers.  (The old ``<`` test put
    boundary draws in the *previous* clause's interval, making interval
    ``i`` one integer too wide and interval ``i+1`` one too narrow.)
    """
    low, high = 0, len(cumulative) - 1
    while low < high:
        middle = (low + high) // 2
        if cumulative[middle] <= needle:
            low = middle + 1
        else:
            high = middle
    return low

"""Probabilistic query evaluation engines.

Three engines that must agree exactly on every instance:

* :mod:`repro.pqe.brute_force` — exponential possible-world oracle;
* :mod:`repro.pqe.extensional` — lifted inference for H+-queries (Möbius
  inversion over the CNF lattice + safe plans), the Dalvi–Suciu side;
* :mod:`repro.pqe.lift` — the general Dalvi–Suciu safe-plan search and
  plan IR for arbitrary UCQs/CQs (not just the h-query family);
* :mod:`repro.pqe.intensional` — the paper's contribution: d-D lineage
  compilation for all zero-Euler H-queries (Theorem 5.2).

Plus the dichotomy classifier (Figure 1) and the hardness/reduction
machinery (Proposition 6.4, Theorem 6.2(a)).
"""

from repro.pqe.approximate import (
    AccuracyBudget,
    Estimate,
    SamplingPlan,
    approximate_probability,
    karp_luby_probability,
    karp_luby_probability_vectorized,
    monte_carlo_probability,
    monte_carlo_probability_vectorized,
    sampling_plan,
)
from repro.pqe.brute_force import (
    pattern_distribution,
    probability_by_lineage_enumeration,
    probability_by_world_enumeration,
)
from repro.pqe.degenerate import (
    degenerate_lineage_circuit,
    degenerate_lineage_obdd,
    pair_query_circuit,
)
from repro.pqe.engine import (
    BRUTE_FORCE_LIMIT,
    BatchEvaluationResult,
    CompilationCache,
    CompilationCacheStats,
    EvaluationResult,
    HardQueryError,
    clear_compilation_cache,
    compilation_cache_stats,
    compile_lineage_cached,
    evaluate,
    evaluate_batch,
)
from repro.pqe.dichotomy import (
    Classification,
    Region,
    classify,
    classify_function,
    classify_query,
    region_counts,
)
from repro.pqe.extensional import (
    ExtensionalPlan,
    ExtensionalPlanCache,
    ExtensionalPlanCacheStats,
    build_plan,
    clear_extensional_plan_cache,
    extensional_plan_stats,
    is_safe,
    lattice_cache_counters,
    mobius_terms,
    plan_ir,
    plan_for,
    probability_by_raw_inclusion_exclusion,
)
from repro.pqe.lift import (
    LiftPlan,
    UnsafeQueryError,
    describe_plan,
    evaluate_plan,
    evaluate_plan_batch,
    evaluate_plan_float,
    is_liftable,
    lift_query,
    lifted_probability,
    lifted_probability_float,
)
from repro.pqe.extensional import probability as extensional_probability
from repro.pqe.extensional import (
    probability_batch as extensional_probability_batch,
)
from repro.pqe.extensional import (
    probability_float as extensional_probability_float,
)
from repro.pqe.hardness import (
    is_provably_hard,
    monotone_witness_with_same_euler,
    probability_by_reduction,
)
from repro.pqe.intensional import (
    CompiledLineage,
    NotCompilableError,
    compile_lineage,
    compile_lineage_ddnnf,
    transfer_lineage,
)
from repro.pqe.intensional import probability as intensional_probability
from repro.pqe.safe_plans import (
    UnsafeSubqueryError,
    chain_probability,
    disjunction_probability,
    disjunction_probability_float,
    run_probability,
    run_probability_float,
    runs_of,
)

__all__ = [
    "AccuracyBudget",
    "BRUTE_FORCE_LIMIT",
    "BatchEvaluationResult",
    "CompilationCache",
    "CompilationCacheStats",
    "Estimate",
    "SamplingPlan",
    "Classification",
    "EvaluationResult",
    "ExtensionalPlan",
    "ExtensionalPlanCache",
    "ExtensionalPlanCacheStats",
    "HardQueryError",
    "CompiledLineage",
    "NotCompilableError",
    "Region",
    "UnsafeQueryError",
    "UnsafeSubqueryError",
    "build_plan",
    "chain_probability",
    "classify",
    "classify_function",
    "classify_query",
    "clear_compilation_cache",
    "clear_extensional_plan_cache",
    "compilation_cache_stats",
    "compile_lineage",
    "compile_lineage_cached",
    "compile_lineage_ddnnf",
    "degenerate_lineage_circuit",
    "degenerate_lineage_obdd",
    "disjunction_probability",
    "disjunction_probability_float",
    "evaluate",
    "evaluate_batch",
    "extensional_plan_stats",
    "extensional_probability",
    "extensional_probability_batch",
    "extensional_probability_float",
    "plan_for",
    "plan_ir",
    "run_probability",
    "run_probability_float",
    "intensional_probability",
    "is_liftable",
    "is_provably_hard",
    "is_safe",
    "lattice_cache_counters",
    "lift_query",
    "lifted_probability",
    "lifted_probability_float",
    "LiftPlan",
    "describe_plan",
    "evaluate_plan",
    "evaluate_plan_batch",
    "evaluate_plan_float",
    "approximate_probability",
    "karp_luby_probability",
    "karp_luby_probability_vectorized",
    "monte_carlo_probability",
    "monte_carlo_probability_vectorized",
    "sampling_plan",
    "mobius_terms",
    "monotone_witness_with_same_euler",
    "pair_query_circuit",
    "pattern_distribution",
    "probability_by_lineage_enumeration",
    "probability_by_raw_inclusion_exclusion",
    "probability_by_reduction",
    "probability_by_world_enumeration",
    "region_counts",
    "runs_of",
    "transfer_lineage",
]

"""Lifted inference over arbitrary UCQs: safe-plan search and the plan IR.

This generalizes the extensional engine from the paper's fixed
``h_{k,i}`` family to *any* union of conjunctive queries, following the
Dalvi–Suciu lifted-inference rules:

* **Independent join / union** — connected-component decomposition.  Two
  subqueries whose atoms can never share a ground tuple (no common
  variable, and no two atoms of the same relation whose constant
  positions are compatible) describe independent events, so their
  conjunction is a product and their disjunction a complement-product.
* **Independent project (separator elimination)** — a *separator* is a
  variable that occurs in every atom (of every disjunct), at one
  consistent position per relation across *all* occurrences of that
  relation, so that substituting distinct domain constants yields
  tuple-disjoint (hence independent) instances:
  ``Pr(∃x Q) = 1 - prod_a (1 - Pr(Q[x -> a]))`` over the active domain.
* **Inclusion–exclusion with Möbius cancellation** — when a connected
  union has no separator, expand ``Pr(∨_i C_i)`` over subset
  conjunctions; dually, a conjunction of variable-disjoint but
  relation-entangled parts expands as ``Pr(∧_i C_i) = Σ_{∅≠S}
  (-1)^{|S|+1} Pr(∨_{i∈S} C_i)``.  Subset terms are grouped up to
  logical equivalence (homomorphism checks both ways), and the grouped
  coefficient of each distinct term is read off the Möbius function of
  the term lattice (:class:`repro.lattice.poset.FinitePoset` — the same
  machinery as the CNF lattice of the h-query engine).  Terms whose
  Möbius weight vanishes are dropped *before* recursion: that is where
  the #P-hard subqueries of safe queries cancel.
* **Self-join shattering** — substituted constants (symbolic
  :class:`Marker` s during plan search) split same-relation atoms into
  provably disjoint groups, re-enabling the component rules.

The search is *query-only*: separators substitute symbolic markers, so a
plan is built once per query and reused across instances (the evaluators
bind markers to actual domain constants).  Mutually dependent
inclusion–exclusion expansions (the genuinely hard queries, e.g. the full
``h_0 ∨ ... ∨ h_k`` support) are detected as cycles on the in-progress
stack and rejected with :class:`UnsafeQueryError`; the search is sound —
every plan it produces computes the exact probability — and complete on
the paper's h-query family (a test pins it against
``Classification.extensional_safe``).

The plan is an IR of small frozen ops (:class:`IndependentJoin`,
:class:`IndependentUnion`, :class:`IndependentProject`,
:class:`Complement`, :class:`InclusionExclusion`, :class:`LeafAtom`,
and :class:`HRunKernel`, which delegates an ``h``-run to the vectorized
chain DP of :mod:`repro.pqe.safe_plans` so ported h-query plans keep
their numbers bit-identically).  Three evaluators share one memoized
recursion: exact :class:`~fractions.Fraction`, exact integers over a
common denominator (the :mod:`repro.db.columnar` encoding, used when the
instance's common denominator fits ``EXACT_DENOMINATOR_BITS``), and
float with numpy-columnar fast paths for projections over single atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from itertools import combinations, product
from math import lcm

from repro.db.columnar import (
    EXACT_DENOMINATOR_BITS,
    h_columns,
    relation_column_values,
    relation_probability_columns,
)
from repro.db.relation import Instance, TupleId
from repro.db.tid import TupleIndependentDatabase
from repro.lattice.poset import FinitePoset
from repro.pqe.safe_plans import run_probability, run_probability_float
from repro.queries.cq import Atom, ConjunctiveQuery, Constant
from repro.queries.ucq import UnionOfCQs, conjoin_cqs, hquery_to_ucq

try:  # numpy is optional, exactly as in repro.db.columnar
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

#: Recursion-depth backstop of the plan search: a cycle the semantic
#: check misses (canonicalization is heuristic) still terminates as
#: an :class:`UnsafeQueryError` instead of an infinite recursion.
MAX_LIFT_DEPTH = 64

#: Inclusion–exclusion enumerates subsets of disjuncts/components; cap
#: the width so a degenerate query cannot demand 2^n plan terms.
MAX_IE_WIDTH = 12


class UnsafeQueryError(ValueError):
    """Raised when no safe (lifted, extensional) plan exists for a query
    — the dichotomy's #P-hard side, or a query outside the fragment the
    safe-plan search covers (callers fall back to compilation)."""


# ----------------------------------------------------------------------
# The plan IR
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Marker:
    """A symbolic constant standing for "the domain constant this
    projection binds" — plans stay data-independent; evaluators bind
    markers while iterating the active domain."""

    index: int

    def __repr__(self) -> str:
        return f"?{self.index}"


@dataclass(frozen=True)
class LeafAtom:
    """``Pr(one ground tuple)``: terms are domain values or markers; an
    absent tuple has probability 0."""

    relation: str
    terms: tuple

    def children(self) -> tuple:
        return ()


@dataclass(frozen=True)
class IndependentJoin:
    """Product of independent events; the empty join is ``1`` (⊤)."""

    parts: tuple

    def children(self) -> tuple:
        return self.parts


@dataclass(frozen=True)
class IndependentUnion:
    """``1 - prod (1 - child)`` over independent events; the empty union
    is ``0`` (⊥)."""

    parts: tuple

    def children(self) -> tuple:
        return self.parts


@dataclass(frozen=True)
class Complement:
    """``1 - child`` (negation; also the building block the union and
    project ops fuse into their complement-products)."""

    part: object

    def children(self) -> tuple:
        return (self.part,)


@dataclass(frozen=True)
class IndependentProject:
    """Separator elimination (independent project / power):
    ``1 - prod_{a in domain} (1 - child[marker -> a])``, the domain being
    the union of the instance's columns named by ``sources`` (pairs of
    ``(relation, position)`` where the separator occurs)."""

    marker: Marker
    sources: tuple
    part: object

    def children(self) -> tuple:
        return (self.part,)


@dataclass(frozen=True)
class InclusionExclusion:
    """``sum coefficient * child`` — the Möbius-weighted terms of an
    inclusion–exclusion expansion (coefficients are nonzero ints)."""

    terms: tuple  # of (coefficient, op)

    def children(self) -> tuple:
        return tuple(op for _, op in self.terms)


@dataclass(frozen=True)
class HRunKernel:
    """A ported h-query kernel: ``Pr(∨_{i in [a..b]} h_{k,i})`` by the
    vectorized chain DP of :mod:`repro.pqe.safe_plans` over the columnar
    h-view — the op existing extensional plans lower onto, keeping their
    results bit-identical (exact and float)."""

    run: tuple
    k: int

    def children(self) -> tuple:
        return ()


LIFT_TRUE = IndependentJoin(())
LIFT_FALSE = IndependentUnion(())


@dataclass(frozen=True)
class LiftPlan:
    """One query's lifted plan: the IR root plus the source query."""

    query: object
    root: object

    def op_count(self) -> int:
        """Number of distinct ops in the DAG (shared subplans count once)."""
        seen = set()

        def walk(op):
            if op in seen:
                return
            seen.add(op)
            for child in op.children():
                walk(child)

        walk(self.root)
        return len(seen)


def describe_plan(plan: LiftPlan | object, indent: str = "") -> str:
    """A human-readable rendering of a plan (docs and the demo use it)."""
    op = plan.root if isinstance(plan, LiftPlan) else plan
    bullet = f"{indent}- "
    if isinstance(op, LeafAtom):
        inner = ",".join(repr(t) for t in op.terms)
        return f"{bullet}leaf {op.relation}({inner})"
    if isinstance(op, HRunKernel):
        return f"{bullet}h-run kernel [{op.run[0]}..{op.run[1]}] (k={op.k})"
    if isinstance(op, IndependentJoin):
        if not op.parts:
            return f"{bullet}true"
        lines = [f"{bullet}independent join"]
    elif isinstance(op, IndependentUnion):
        if not op.parts:
            return f"{bullet}false"
        lines = [f"{bullet}independent union"]
    elif isinstance(op, Complement):
        lines = [f"{bullet}complement"]
    elif isinstance(op, IndependentProject):
        sources = ", ".join(f"{rel}[{pos}]" for rel, pos in op.sources)
        lines = [f"{bullet}project {op.marker!r} over {sources}"]
    elif isinstance(op, InclusionExclusion):
        lines = [f"{bullet}inclusion–exclusion"]
        for coefficient, child in op.terms:
            lines.append(f"{indent}  [{coefficient:+d}]")
            lines.append(describe_plan(child, indent + "    "))
        return "\n".join(lines)
    else:  # pragma: no cover - defensive
        return f"{bullet}{op!r}"
    for child in op.children():
        lines.append(describe_plan(child, indent + "  "))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Homomorphism infrastructure (implication, equivalence, minimization)
# ----------------------------------------------------------------------


def _frozen_variable(name: str):
    """The canonical-database constant freezing a query variable."""
    return ("__lift_var__", name)


def _canonical_instance(cq: ConjunctiveQuery) -> Instance:
    """The canonical database of ``cq``: variables frozen to fresh
    constants — ``C1 ⊨ C2`` iff ``C2`` holds in ``C1``'s canonical db."""
    instance = Instance()
    for atom in cq.atoms:
        if atom.relation not in {r.name for r in instance.relations()}:
            instance.declare(atom.relation, len(atom.terms))
        instance.add(
            atom.relation,
            tuple(
                term.value
                if isinstance(term, Constant)
                else _frozen_variable(term)
                for term in atom.terms
            ),
        )
    return instance


class _BuildContext:
    """Shared state of one plan search: fresh markers, memo tables, the
    in-progress stack for cycle (unsafety) detection."""

    def __init__(self) -> None:
        self.counter = 0
        self.memo: dict = {}
        self.implies_cache: dict = {}
        self.canonical_cache: dict = {}
        self.stack: list = []
        self.depth = 0

    def fresh_marker(self) -> Marker:
        marker = Marker(self.counter)
        self.counter += 1
        return marker

    def implies(self, c1: ConjunctiveQuery, c2: ConjunctiveQuery) -> bool:
        """``c1 ⊨ c2`` (there is a homomorphism from ``c2`` into ``c1``)."""
        key = (c1, c2)
        cached = self.implies_cache.get(key)
        if cached is None:
            cached = c2.holds_in(_canonical_instance(c1))
            self.implies_cache[key] = cached
        return cached

    def equivalent(self, c1: ConjunctiveQuery, c2: ConjunctiveQuery) -> bool:
        return self.implies(c1, c2) and self.implies(c2, c1)

    def union_implies(self, u1: tuple, u2: tuple) -> bool:
        """UCQ implication: every disjunct of ``u1`` implies some
        disjunct of ``u2`` (the classical containment criterion)."""
        return all(
            any(self.implies(c, d) for d in u2) for c in u1
        )

    def unions_equivalent(self, u1: tuple, u2: tuple) -> bool:
        return self.union_implies(u1, u2) and self.union_implies(u2, u1)

    def canonical_cq_key(self, cq: ConjunctiveQuery):
        """A deterministic renaming-invariant key (greedy labeling; used
        for memoization and stable orderings, never for semantics)."""
        cached = self.canonical_cache.get(cq)
        if cached is not None:
            return cached
        remaining = list(dict.fromkeys(cq.atoms))
        naming: dict[str, int] = {}
        rendered = []

        def render(atom: Atom):
            return (
                atom.relation,
                tuple(
                    ("c", repr(term.value))
                    if isinstance(term, Constant)
                    else ("v", naming.get(term, -1))
                    for term in atom.terms
                ),
            )

        while remaining:
            best = min(remaining, key=render)
            remaining.remove(best)
            for term in best.terms:
                if isinstance(term, str) and term not in naming:
                    naming[term] = len(naming)
            rendered.append(render(best))
        key = tuple(rendered)
        self.canonical_cache[cq] = key
        return key


def _minimize_cq(cq: ConjunctiveQuery, ctx: _BuildContext) -> ConjunctiveQuery:
    """The (greedy) core of ``cq``: drop atoms while the reduced query
    still implies the original — removes duplicated and hom-redundant
    atoms, the step that makes self-join shattering converge."""
    atoms = list(dict.fromkeys(cq.atoms))
    current = ConjunctiveQuery(tuple(atoms))
    changed = True
    while changed and len(atoms) > 1:
        changed = False
        for i in range(len(atoms)):
            reduced = ConjunctiveQuery(tuple(atoms[:i] + atoms[i + 1:]))
            if ctx.implies(reduced, current):
                atoms = list(reduced.atoms)
                current = reduced
                changed = True
                break
    return current


def _minimize_union(disjuncts: tuple, ctx: _BuildContext) -> tuple:
    """Core-minimize every disjunct and absorb subsumed ones (``C_i`` is
    dropped when it implies another disjunct); deterministic order."""
    minimized = sorted(
        (_minimize_cq(cq, ctx) for cq in disjuncts),
        key=ctx.canonical_cq_key,
    )
    kept: list[ConjunctiveQuery] = []
    for candidate in minimized:
        if any(ctx.implies(candidate, existing) for existing in kept):
            continue
        kept = [
            existing
            for existing in kept
            if not ctx.implies(existing, candidate)
        ] + [candidate]
    return tuple(kept)


# ----------------------------------------------------------------------
# Component decomposition and separator search
# ----------------------------------------------------------------------


def _atoms_may_overlap(a: Atom, b: Atom) -> bool:
    """Whether two atoms can ground to the same tuple in some instance:
    same relation and arity, and every position where *both* carry a
    plain constant agrees (markers may bind any value, so they are
    compatible with everything)."""
    if a.relation != b.relation or len(a.terms) != len(b.terms):
        return False
    for ta, tb in zip(a.terms, b.terms):
        if not (isinstance(ta, Constant) and isinstance(tb, Constant)):
            continue
        if isinstance(ta.value, Marker) or isinstance(tb.value, Marker):
            continue
        if ta.value != tb.value:
            return False
    return True


def _group_connected(items: list, connected) -> list[list]:
    """Union-find the items under the pairwise ``connected`` predicate."""
    parents = list(range(len(items)))

    def find(i: int) -> int:
        while parents[i] != i:
            parents[i] = parents[parents[i]]
            i = parents[i]
        return i

    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            if connected(items[i], items[j]):
                parents[find(i)] = find(j)
    groups: dict[int, list] = {}
    for i, item in enumerate(items):
        groups.setdefault(find(i), []).append(item)
    return list(groups.values())


def _cq_components(
    cq: ConjunctiveQuery, ctx: _BuildContext, *, overlap: bool = True
) -> list[ConjunctiveQuery]:
    """The connected components of a CQ's atoms: atoms sharing a variable
    are connected; with ``overlap`` (the independence-safe notion), atoms
    of the same relation that may share ground tuples are too."""

    def connected(a: Atom, b: Atom) -> bool:
        if a.variables() & b.variables():
            return True
        return overlap and _atoms_may_overlap(a, b)

    groups = _group_connected(list(dict.fromkeys(cq.atoms)), connected)
    components = [ConjunctiveQuery(tuple(group)) for group in groups]
    return sorted(components, key=ctx.canonical_cq_key)


def _union_components(disjuncts: tuple, ctx: _BuildContext) -> list[tuple]:
    """Group disjuncts whose atoms may share ground tuples; distinct
    groups describe independent events (variables are scoped per CQ, so
    only relation/constant overlap can correlate them)."""

    def connected(c1: ConjunctiveQuery, c2: ConjunctiveQuery) -> bool:
        return any(
            _atoms_may_overlap(a, b) for a in c1.atoms for b in c2.atoms
        )

    groups = _group_connected(list(disjuncts), connected)
    return sorted(
        (tuple(group) for group in groups),
        key=lambda group: tuple(ctx.canonical_cq_key(cq) for cq in group),
    )


def _root_options(cq: ConjunctiveQuery, variable: str) -> dict | None:
    """Per-relation positions at which ``variable`` occurs in *every*
    atom of that relation in ``cq`` — ``None`` when some relation has no
    common position (then ``variable`` cannot anchor the shattering)."""
    options: dict[str, set[int]] = {}
    for atom in cq.atoms:
        positions = {
            index for index, term in enumerate(atom.terms) if term == variable
        }
        if not positions:
            return None
        existing = options.get(atom.relation)
        options[atom.relation] = (
            positions if existing is None else existing & positions
        )
    if any(not positions for positions in options.values()):
        return None
    return options


def _union_separator(disjuncts: tuple):
    """A separator for a (connected) union: one root variable per
    disjunct occurring in each of its atoms, with a single consistent
    position per relation *across all disjuncts* — the condition that
    makes per-constant instances tuple-disjoint.  Returns ``(roots,
    positions)`` or ``None``."""

    def solve(index: int, positions: dict) -> tuple | None:
        if index == len(disjuncts):
            return (), positions
        cq = disjuncts[index]
        candidates = sorted(
            frozenset.intersection(
                *[atom.variables() for atom in cq.atoms]
            )
        )
        for variable in candidates:
            options = _root_options(cq, variable)
            if options is None:
                continue
            if any(
                rel in positions and positions[rel] not in opts
                for rel, opts in options.items()
            ):
                continue
            free = sorted(rel for rel in options if rel not in positions)
            for combo in product(
                *[sorted(options[rel]) for rel in free]
            ):
                extended = dict(positions)
                extended.update(zip(free, combo))
                solution = solve(index + 1, extended)
                if solution is not None:
                    roots, final = solution
                    return (variable,) + roots, final
        return None

    if any(not cq.atoms or not cq.variables() for cq in disjuncts):
        return None
    return solve(0, {})


def _substitute(
    cq: ConjunctiveQuery, variable: str, marker: Marker
) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        tuple(
            Atom(
                atom.relation,
                tuple(
                    Constant(marker) if term == variable else term
                    for term in atom.terms
                ),
            )
            for atom in cq.atoms
        )
    )


# ----------------------------------------------------------------------
# Möbius-grouped inclusion–exclusion
# ----------------------------------------------------------------------

_IE_TOP = "⊤"
_IE_BOTTOM = "⊥"


def _mobius_grouped(
    items: list, make_term, term_implies, equivalent, *, dual: bool
):
    """Group the nonempty-subset terms of an inclusion–exclusion up to
    logical equivalence and weight each class by the Möbius function of
    the term lattice (computed with :class:`FinitePoset`): conjunction
    terms of a union expansion are *meets*, weighted ``-mu(term, 1̂)``
    against an adjoined top (⊤ = the empty conjunction); the ``dual``
    expansion of a conjunction produces *join* terms, weighted
    ``-mu(0̂, term)`` against an adjoined bottom (⊥ = the empty union).
    Both equal the regrouped ``(-1)^{|S|+1}`` subset sums — a test pins
    that — and zero-weight classes, the cancelled (possibly #P-hard)
    subqueries, are dropped before any recursion."""
    if len(items) > MAX_IE_WIDTH:
        raise UnsafeQueryError(
            f"inclusion–exclusion over {len(items)} parts exceeds the "
            f"plan-search width bound {MAX_IE_WIDTH}"
        )
    representatives: list = []
    for size in range(1, len(items) + 1):
        for subset in combinations(range(len(items)), size):
            term = make_term([items[i] for i in subset])
            if not any(
                equivalent(term, existing) for existing in representatives
            ):
                representatives.append(term)
    sentinel = _IE_BOTTOM if dual else _IE_TOP

    def leq(a, b) -> bool:
        if a == b:
            return True
        if b == sentinel:
            return dual is False
        if a == sentinel:
            return dual is True
        return term_implies(representatives[a], representatives[b])

    poset = FinitePoset([sentinel] + list(range(len(representatives))), leq)
    if dual:
        weights = {
            i: poset.mobius(sentinel, i)
            for i in range(len(representatives))
        }
    else:
        weights = poset.mobius_column(sentinel)
    return [
        (-weights[i], representatives[i])
        for i in range(len(representatives))
        if weights[i] != 0
    ]


# ----------------------------------------------------------------------
# The safe-plan search
# ----------------------------------------------------------------------


def _lift_or(disjuncts: tuple, ctx: _BuildContext):
    disjuncts = _minimize_union(disjuncts, ctx)
    if not disjuncts:
        return LIFT_FALSE
    if any(not cq.atoms for cq in disjuncts):
        return LIFT_TRUE
    key = ("or",) + tuple(ctx.canonical_cq_key(cq) for cq in disjuncts)
    cached = ctx.memo.get(key)
    if cached is not None:
        return cached
    for in_progress in ctx.stack:
        if ctx.unions_equivalent(disjuncts, in_progress):
            raise UnsafeQueryError(
                "query is unsafe: inclusion–exclusion expansion of "
                f"{_render_union(disjuncts)} depends on itself (the "
                "hard subquery survives with non-zero Möbius weight)"
            )
    if ctx.depth >= MAX_LIFT_DEPTH:
        raise UnsafeQueryError(
            f"safe-plan search exceeded depth {MAX_LIFT_DEPTH}"
        )
    ctx.stack.append(disjuncts)
    ctx.depth += 1
    try:
        op = _lift_or_connected(disjuncts, ctx)
    finally:
        ctx.stack.pop()
        ctx.depth -= 1
    ctx.memo[key] = op
    return op


def _lift_or_connected(disjuncts: tuple, ctx: _BuildContext):
    components = _union_components(disjuncts, ctx)
    if len(components) > 1:
        return IndependentUnion(
            tuple(_lift_or(component, ctx) for component in components)
        )
    if len(disjuncts) == 1:
        return _lift_cq(disjuncts[0], ctx)
    separator = _union_separator(disjuncts)
    if separator is not None:
        roots, positions = separator
        marker = ctx.fresh_marker()
        substituted = tuple(
            _substitute(cq, root, marker)
            for cq, root in zip(disjuncts, roots)
        )
        sources = tuple(sorted(positions.items()))
        return IndependentProject(
            marker, sources, _lift_or(substituted, ctx)
        )
    grouped = _mobius_grouped(
        list(disjuncts),
        lambda subset: _minimize_cq(conjoin_cqs(subset), ctx),
        ctx.implies,
        ctx.equivalent,
        dual=False,
    )
    return InclusionExclusion(
        tuple(
            (coefficient, _lift_cq(term, ctx))
            for coefficient, term in grouped
        )
    )


def _lift_cq(cq: ConjunctiveQuery, ctx: _BuildContext):
    cq = _minimize_cq(cq, ctx)
    if not cq.atoms:
        return LIFT_TRUE
    key = ("cq", ctx.canonical_cq_key(cq))
    cached = ctx.memo.get(key)
    if cached is not None:
        return cached
    op = _lift_cq_connected(cq, ctx)
    ctx.memo[key] = op
    return op


def _lift_cq_connected(cq: ConjunctiveQuery, ctx: _BuildContext):
    components = _cq_components(cq, ctx)
    if len(components) > 1:
        return IndependentJoin(
            tuple(_lift_cq(component, ctx) for component in components)
        )
    if len(cq.atoms) == 1 and not cq.variables():
        atom = cq.atoms[0]
        return LeafAtom(
            atom.relation, tuple(term.value for term in atom.terms)
        )
    separator = _union_separator((cq,))
    if separator is not None:
        (root,), positions = separator
        marker = ctx.fresh_marker()
        sources = tuple(sorted(positions.items()))
        return IndependentProject(
            marker, sources, _lift_cq(_substitute(cq, root, marker), ctx)
        )
    parts = _cq_components(cq, ctx, overlap=False)
    if len(parts) > 1:
        # No separator, but the variable-connected parts are entangled
        # only through shared relations: expand by the dual
        # inclusion–exclusion  Pr(∧ P_i) = Σ ± Pr(∨_{S} P_i), whose union
        # terms regain separators (or decompose further).
        grouped = _mobius_grouped(
            parts,
            lambda subset: _minimize_union(tuple(subset), ctx),
            ctx.union_implies,
            ctx.unions_equivalent,
            dual=True,
        )
        return InclusionExclusion(
            tuple(
                (coefficient, _lift_or(term, ctx))
                for coefficient, term in grouped
            )
        )
    raise UnsafeQueryError(
        f"query is unsafe: connected subquery {cq} has no separator "
        "variable (the hierarchical condition fails)"
    )


def _render_union(disjuncts: tuple) -> str:
    return " ∨ ".join(f"({cq})" for cq in disjuncts)


def _as_ucq(query) -> UnionOfCQs:
    if isinstance(query, UnionOfCQs):
        return query
    if isinstance(query, ConjunctiveQuery):
        return UnionOfCQs((query,))
    if hasattr(query, "phi"):  # HQuery without importing the class
        try:
            return hquery_to_ucq(query)
        except ValueError as error:
            raise UnsafeQueryError(str(error)) from error
    raise TypeError(f"cannot lift {type(query).__name__} queries")


def _validate_arities(ucq: UnionOfCQs) -> None:
    arities: dict[str, int] = {}
    for cq in ucq.disjuncts:
        for atom in cq.atoms:
            known = arities.setdefault(atom.relation, len(atom.terms))
            if known != len(atom.terms):
                raise ValueError(
                    f"relation {atom.relation!r} used with arities "
                    f"{known} and {len(atom.terms)}"
                )


def lift_query(query) -> LiftPlan:
    """The lifted (extensional) plan of a UCQ, CQ or monotone H-query.

    :raises UnsafeQueryError: when the safe-plan search finds no plan —
        the query is #P-hard (or outside the covered fragment).
    :raises ValueError: on malformed queries (inconsistent arities).
    """
    ucq = _as_ucq(query)
    _validate_arities(ucq)
    ctx = _BuildContext()
    root = _lift_or(tuple(ucq.disjuncts), ctx)
    return LiftPlan(query=query, root=root)


def is_liftable(query) -> bool:
    """Whether the safe-plan search lifts ``query`` — the general safety
    test subsuming ``Classification.extensional_safe`` (a property test
    pins their agreement on the h-query family)."""
    try:
        lift_query(query)
    except (UnsafeQueryError, TypeError, ValueError):
        return False
    return True


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------


class _Evaluation:
    """One evaluation pass: per-(op, bindings) memo so shared subplans —
    and the distinct-run dedup of ported h-plans — compute once."""

    def __init__(self, tid: TupleIndependentDatabase):
        self.tid = tid
        self.instance = tid.instance
        self.memo: dict = {}
        self._h_columns: dict = {}
        self._free: dict = {}

    def h_columns(self, k: int):
        columns = self._h_columns.get(k)
        if columns is None:
            columns = self._h_columns[k] = h_columns(self.tid, k)
        return columns

    def domain(self, sources: tuple) -> list:
        return _project_domain(self.instance, sources)

    def free_markers(self, op) -> frozenset:
        cached = self._free.get(op)
        if cached is not None:
            return cached
        if isinstance(op, LeafAtom):
            free = frozenset(
                term for term in op.terms if isinstance(term, Marker)
            )
        elif isinstance(op, IndependentProject):
            free = self.free_markers(op.part) - {op.marker}
        else:
            free = frozenset()
            for child in op.children():
                free |= self.free_markers(child)
        self._free[op] = free
        return free

    def bindings_key(self, op, env: dict) -> tuple:
        free = self.free_markers(op)
        return tuple(
            sorted(
                ((marker.index, env[marker]) for marker in free),
                key=lambda pair: (pair[0], repr(pair[1])),
            )
        )

    def leaf_probability(self, op: LeafAtom, env: dict) -> Fraction:
        values = tuple(
            env[term] if isinstance(term, Marker) else term
            for term in op.terms
        )
        if not self.instance.has(op.relation, values):
            return Fraction(0)
        return self.tid.probability_of(TupleId(op.relation, values))


def _project_domain(instance: Instance, sources: tuple) -> list:
    """The active domain a projection ranges over: the distinct values in
    the named ``(relation, position)`` columns, in deterministic order
    (version-cached on the instance)."""

    def build(db: Instance) -> list:
        values = set()
        for relation, position in sources:
            values.update(relation_column_values(db, relation, position))
        return sorted(values, key=repr)

    return instance.cached_derivation(("pqe.lift.domain", sources), build)


def _eval_fraction(op, env: dict, ev: _Evaluation) -> Fraction:
    key = (op, ev.bindings_key(op, env))
    cached = ev.memo.get(key)
    if cached is not None:
        return cached
    if isinstance(op, LeafAtom):
        value = ev.leaf_probability(op, env)
    elif isinstance(op, IndependentJoin):
        value = Fraction(1)
        for child in op.parts:
            value *= _eval_fraction(child, env, ev)
    elif isinstance(op, IndependentUnion):
        miss = Fraction(1)
        for child in op.parts:
            miss *= 1 - _eval_fraction(child, env, ev)
        value = 1 - miss
    elif isinstance(op, Complement):
        value = 1 - _eval_fraction(op.part, env, ev)
    elif isinstance(op, IndependentProject):
        miss = Fraction(1)
        for constant in ev.domain(op.sources):
            bound = dict(env)
            bound[op.marker] = constant
            miss *= 1 - _eval_fraction(op.part, bound, ev)
        value = 1 - miss
    elif isinstance(op, InclusionExclusion):
        value = Fraction(0)
        for coefficient, child in op.terms:
            value += coefficient * _eval_fraction(child, env, ev)
    elif isinstance(op, HRunKernel):
        value = run_probability(
            op.run, op.k, ev.tid, columns=ev.h_columns(op.k)
        )
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown lift op {type(op).__name__}")
    ev.memo[key] = value
    return value


def _eval_float(op, env: dict, ev: _Evaluation) -> float:
    key = (op, ev.bindings_key(op, env))
    cached = ev.memo.get(key)
    if cached is not None:
        return cached
    if isinstance(op, LeafAtom):
        value = float(ev.leaf_probability(op, env))
    elif isinstance(op, IndependentJoin):
        value = 1.0
        for child in op.parts:
            value *= _eval_float(child, env, ev)
    elif isinstance(op, IndependentUnion):
        miss = 1.0
        for child in op.parts:
            miss *= 1.0 - _eval_float(child, env, ev)
        value = 1.0 - miss
    elif isinstance(op, Complement):
        value = 1.0 - _eval_float(op.part, env, ev)
    elif isinstance(op, IndependentProject):
        column = _project_column(op, env, ev)
        if column is not None:
            value = _one_minus_prod(column)
        else:
            miss = 1.0
            for constant in ev.domain(op.sources):
                bound = dict(env)
                bound[op.marker] = constant
                miss *= 1.0 - _eval_float(op.part, bound, ev)
            value = 1.0 - miss
    elif isinstance(op, InclusionExclusion):
        value = 0.0
        for coefficient, child in op.terms:
            value += coefficient * _eval_float(child, env, ev)
    elif isinstance(op, HRunKernel):
        value = run_probability_float(
            op.run, op.k, ev.tid, columns=ev.h_columns(op.k)
        )
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown lift op {type(op).__name__}")
    ev.memo[key] = value
    return value


def _project_column(op: IndependentProject, env: dict, ev: _Evaluation):
    """The columnar fast path of a projection: when the child is one
    atom in which the projected marker occurs exactly once and every
    other term is resolved, the whole domain sweep is one grouped
    probability column — return it (a float array), else ``None``."""
    child = op.part
    if not isinstance(child, LeafAtom):
        return None
    marker_positions = [
        index for index, term in enumerate(child.terms) if term == op.marker
    ]
    if len(marker_positions) != 1:
        return None
    key_positions = []
    key_values = []
    for index, term in enumerate(child.terms):
        if index == marker_positions[0]:
            continue
        if isinstance(term, Marker):
            if term not in env:
                return None
            key_values.append(env[term])
        else:
            key_values.append(term)
        key_positions.append(index)
    groups = relation_probability_columns(
        ev.tid, child.relation, tuple(key_positions)
    )
    return groups.get(tuple(key_values), _EMPTY_COLUMN)


_EMPTY_COLUMN: tuple = ()


def _one_minus_prod(column) -> float:
    """``1 - prod(1 - column)`` — numpy when the column is an ndarray."""
    if _np is not None and isinstance(column, _np.ndarray):
        return float(1.0 - _np.prod(1.0 - column))
    miss = 1.0
    for probability in column:
        miss *= 1.0 - probability
    return 1.0 - miss


# -- exact integers over a common denominator ---------------------------


class _CommonDenominator:
    """The integer encoding of :mod:`repro.db.columnar`: every value is
    ``numerator / D**exponent`` for the instance-wide common denominator
    ``D`` — multiplication stays integral and one ``Fraction`` at the
    root canonicalizes."""

    def __init__(self, tid: TupleIndependentDatabase):
        self.tid = tid
        denominator = 1
        for tuple_id in tid.instance.tuple_ids():
            denominator = lcm(
                denominator, tid.probability_of(tuple_id).denominator
            )
        self.denominator = (
            denominator
            if denominator.bit_length() <= EXACT_DENOMINATOR_BITS
            else None
        )
        self._powers: dict[int, int] = {0: 1, 1: denominator}

    def power(self, exponent: int) -> int:
        cached = self._powers.get(exponent)
        if cached is None:
            cached = self._powers[exponent] = self.denominator**exponent
        return cached


def _eval_common_denominator(
    op, env: dict, ev: _Evaluation, cd: _CommonDenominator
) -> tuple:
    """Evaluate to ``(numerator, exponent)`` with value ``n / D**e``."""
    key = ("cd", op, ev.bindings_key(op, env))
    cached = ev.memo.get(key)
    if cached is not None:
        return cached
    if isinstance(op, LeafAtom):
        probability = ev.leaf_probability(op, env)
        numerator = probability.numerator * (
            cd.denominator // probability.denominator
        )
        value = (numerator, 1)
    elif isinstance(op, IndependentJoin):
        numerator, exponent = 1, 0
        for child in op.parts:
            n, e = _eval_common_denominator(child, env, ev, cd)
            numerator *= n
            exponent += e
        value = (numerator, exponent)
    elif isinstance(op, (IndependentUnion, IndependentProject)):
        numerator, exponent = 1, 0
        if isinstance(op, IndependentUnion):
            bound_children = [(child, env) for child in op.parts]
        else:
            bound_children = []
            for constant in ev.domain(op.sources):
                bound = dict(env)
                bound[op.marker] = constant
                bound_children.append((op.part, bound))
        for child, bound in bound_children:
            n, e = _eval_common_denominator(child, bound, ev, cd)
            numerator *= cd.power(e) - n
            exponent += e
        value = (cd.power(exponent) - numerator, exponent)
    elif isinstance(op, Complement):
        n, e = _eval_common_denominator(op.part, env, ev, cd)
        value = (cd.power(e) - n, e)
    elif isinstance(op, InclusionExclusion):
        parts = [
            (coefficient, _eval_common_denominator(child, env, ev, cd))
            for coefficient, child in op.terms
        ]
        exponent = max((e for _, (_, e) in parts), default=0)
        numerator = sum(
            coefficient * n * cd.power(exponent - e)
            for coefficient, (n, e) in parts
        )
        value = (numerator, exponent)
    else:  # pragma: no cover - HRunKernel plans take the Fraction path
        raise TypeError(f"unknown lift op {type(op).__name__}")
    ev.memo[key] = value
    return value


def _contains_kernel(root) -> bool:
    seen = set()
    stack = [root]
    while stack:
        op = stack.pop()
        if op in seen:
            continue
        seen.add(op)
        if isinstance(op, HRunKernel):
            return True
        stack.extend(op.children())
    return False


def evaluate_plan(plan: LiftPlan | object, tid: TupleIndependentDatabase) -> Fraction:
    """Exact ``Pr(Q)`` of a lifted plan: integer common-denominator
    arithmetic when the instance's denominator fits
    ``EXACT_DENOMINATOR_BITS`` (and the plan has no h-kernels, which
    return ready-made Fractions), exact Fractions otherwise — the two
    backends are exact, so they agree bit-identically."""
    root = plan.root if isinstance(plan, LiftPlan) else plan
    ev = _Evaluation(tid)
    if not _contains_kernel(root):
        cd = _CommonDenominator(tid)
        if cd.denominator is not None:
            numerator, exponent = _eval_common_denominator(root, {}, ev, cd)
            return Fraction(numerator, cd.power(exponent))
    return _eval_fraction(root, {}, ev)


def evaluate_plan_float(
    plan: LiftPlan | object, tid: TupleIndependentDatabase
) -> float:
    """Float ``Pr(Q)`` of a lifted plan (numpy-columnar fast paths for
    single-atom projections; h-kernels keep the chain-DP float sweeps)."""
    root = plan.root if isinstance(plan, LiftPlan) else plan
    return _eval_float(root, {}, _Evaluation(tid))


def evaluate_plan_batch(
    plan: LiftPlan | object, tids: list
) -> list[float]:
    """Float ``Pr(Q)`` over many TIDs sharing one plan; per-TID results
    are independent of batch composition (the microbatcher's contract)."""
    return [evaluate_plan_float(plan, tid) for tid in tids]


def lifted_probability(
    query, tid: TupleIndependentDatabase, *, plan: LiftPlan | None = None
) -> Fraction:
    """Exact ``Pr(Q)`` by general lifted inference.

    :raises UnsafeQueryError: when no safe plan exists.
    """
    if plan is None:
        plan = lift_query(query)
    return evaluate_plan(plan, tid)


def lifted_probability_float(
    query, tid: TupleIndependentDatabase, *, plan: LiftPlan | None = None
) -> float:
    """The float backend of :func:`lifted_probability`."""
    if plan is None:
        plan = lift_query(query)
    return evaluate_plan_float(plan, tid)

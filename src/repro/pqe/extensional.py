"""Extensional (lifted-inference) evaluation of H+-queries.

This is the Dalvi–Suciu side of the paper's dichotomy, specialized to the
H+-queries (Proposition 3.5): write the monotone ``phi`` in minimized CNF
``C_0 ∧ ... ∧ C_n``, apply inclusion–exclusion

``Pr(∧_i C_i) = sum over nonempty s of (-1)^{|s|+1} Pr(∨_{i in s} C_i)``,

and observe that ``∨_{i in s} C_i`` only depends on the *union*
``d_s = ∪_{i in s} C_i`` — the CNF-lattice element.  Collapsing equal
unions turns the coefficients into Möbius-function values of the lattice
(this is the Möbius inversion step the paper's title refers to), so

``Pr(Q_phi) = - sum over lattice elements u < 1̂ of mu(u, 1̂) * Pr(Q_u)``

with ``Q_u = ∨_{j in u} h_{k,j}``.  Every ``u`` except the bottom
``0̂ = DEP(phi)`` is a proper subset of ``{0..k}`` and is lifted by
:mod:`repro.pqe.safe_plans`; the bottom is the #P-hard full disjunction,
and the query is safe exactly when its coefficient ``mu(0̂, 1̂)`` — equal to
``e(phi)`` by Lemma 3.8 — vanishes, letting the hard subquery *cancel out*.

Evaluation is staged through an :class:`ExtensionalPlan`: the Möbius
terms, their run decompositions, and the *distinct* runs across all
terms, built once per query (behind :class:`ExtensionalPlanCache`, the
extensional sibling of the engine's compilation cache) and reused across
every probability call.  One evaluation is then a single batched sweep:
each distinct run is lifted exactly once over the TID's columnar view
(:func:`repro.db.columnar.h_columns`), and every lattice term combines
the shared run values instead of re-deriving them — q_9's seven terms,
for instance, touch only five distinct runs.

Both the collapsed (Möbius) and the uncollapsed (raw inclusion–exclusion)
evaluations are provided; they agree term-for-term after grouping, which a
test verifies.

Since the general lifted engine landed (:mod:`repro.pqe.lift`), the
h-query plans built here are *lowered onto its IR*: each Möbius term
becomes an :class:`~repro.pqe.lift.InclusionExclusion` /
:class:`~repro.pqe.lift.IndependentUnion` pair whose leaves are
:class:`~repro.pqe.lift.HRunKernel` ops delegating back to the chain-DP
sweeps of :mod:`repro.pqe.safe_plans` — so the h-fast-path numbers are
bit-identical (exact and float) while general UCQs share the same
evaluators and plan cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from itertools import combinations

from repro.lattice.cnf_lattice import cnf_lattice, dnf_lattice
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.lift import (
    LIFT_FALSE,
    LIFT_TRUE,
    HRunKernel,
    InclusionExclusion,
    IndependentUnion,
    LiftPlan,
    UnsafeQueryError,
    evaluate_plan,
    evaluate_plan_float,
    lift_query,
)
from repro.pqe.safe_plans import (
    UnsafeSubqueryError,
    disjunction_probability,
    runs_of,
)
from repro.queries.hqueries import HQuery

EXTENSIONAL_PLAN_CACHE_LIMIT = 256  #: max cached plans (LRU)

__all__ = [
    "EXTENSIONAL_PLAN_CACHE_LIMIT",
    "ExtensionalPlan",
    "ExtensionalPlanCache",
    "ExtensionalPlanCacheStats",
    "UnsafeQueryError",
    "build_plan",
    "clear_extensional_plan_cache",
    "extensional_plan_stats",
    "is_safe",
    "lattice_cache_counters",
    "mobius_terms",
    "plan_for",
    "plan_ir",
    "probability",
    "probability_batch",
    "probability_by_raw_inclusion_exclusion",
    "probability_float",
]


@lru_cache(maxsize=EXTENSIONAL_PLAN_CACHE_LIMIT)
def _mobius_terms_of(phi) -> tuple[tuple[frozenset[int], int], ...]:
    """The memoized lattice walk behind :func:`mobius_terms`: CNF lattice
    plus Möbius column, computed once per (monotone, non-constant) phi."""
    lattice = cnf_lattice(phi)
    column = lattice.mobius_column()
    terms = []
    for element, mobius_value in column.items():
        if element == lattice.top:  # u = 1̂ contributes Pr(empty ∨) = 0.
            continue
        if mobius_value == 0:
            continue
        terms.append((element, -mobius_value))
    return tuple(terms)


def mobius_terms(query: HQuery) -> list[tuple[frozenset[int], int]]:
    """The lattice elements and their coefficients ``-mu(u, 1̂)`` as used by
    the lifted evaluation, for a monotone non-constant ``phi``; terms with
    zero coefficient are dropped (this is where hard subqueries cancel).

    Memoized per ``phi`` (LRU of :data:`EXTENSIONAL_PLAN_CACHE_LIMIT`
    entries): the lattice and its Möbius column depend only on the query,
    so repeated ``probability()`` calls never rebuild them.
    """
    phi = query.phi
    if not phi.is_monotone():
        raise UnsafeQueryError(
            "the extensional engine handles UCQs (monotone phi) only"
        )
    return list(_mobius_terms_of(phi))


# ----------------------------------------------------------------------
# Plans: Möbius terms resolved to shared run decompositions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExtensionalPlan:
    """One query's extensional evaluation, staged for reuse.

    ``runs`` lists the *distinct* maximal runs appearing across all
    Möbius terms; each term holds its coefficient and indices into that
    list.  Evaluating the plan lifts every distinct run exactly once per
    TID (sharing the per-run group reductions across lattice elements)
    and combines the cached values per term — the batched form of the
    term-by-term seed evaluation, exactly equal by independence of runs.

    ``constant`` short-circuits the constant queries (``phi`` bottom/top);
    ``terms``/``runs`` are then empty.
    """

    k: int
    constant: Fraction | None
    #: per Möbius term: ``(coefficient, indices into runs)``
    terms: tuple[tuple[int, tuple[int, ...]], ...]
    runs: tuple[tuple[int, int], ...]


def build_plan(query: HQuery) -> ExtensionalPlan:
    """The extensional plan of ``query``.

    :raises UnsafeQueryError: if ``phi`` is not monotone, or is monotone
        nondegenerate with non-zero CNF-lattice Möbius value (then
        ``PQE(Q_phi)`` is #P-hard and has no extensional plan).
    """
    phi = query.phi
    if not phi.is_monotone():
        raise UnsafeQueryError(
            "the extensional engine handles UCQs (monotone phi) only"
        )
    if phi.is_bottom():
        return ExtensionalPlan(query.k, Fraction(0), (), ())
    if phi.is_top():
        return ExtensionalPlan(query.k, Fraction(1), (), ())
    run_ids: dict[tuple[int, int], int] = {}
    runs: list[tuple[int, int]] = []
    terms: list[tuple[int, tuple[int, ...]]] = []
    for element, coefficient in mobius_terms(query):
        ids = []
        for run in runs_of(element):
            if run == (0, query.k):
                raise UnsafeQueryError(
                    "query is unsafe: the #P-hard bottom subquery has "
                    f"non-zero Möbius coefficient {-coefficient} "
                    "(= -e(phi) by Lemma 3.8)"
                )
            rid = run_ids.get(run)
            if rid is None:
                rid = run_ids[run] = len(runs)
                runs.append(run)
            ids.append(rid)
        terms.append((coefficient, tuple(ids)))
    return ExtensionalPlan(query.k, None, tuple(terms), tuple(runs))


@lru_cache(maxsize=EXTENSIONAL_PLAN_CACHE_LIMIT)
def plan_ir(plan: ExtensionalPlan) -> LiftPlan:
    """The :mod:`repro.pqe.lift` IR form of an h-query plan: an
    inclusion–exclusion sum over the Möbius terms, each an independent
    union of :class:`~repro.pqe.lift.HRunKernel` leaves.  Distinct runs
    share one kernel op, so the IR evaluators' per-op memo reproduces the
    distinct-run dedup of the batched seed sweep — and with the kernels
    delegating to the same chain-DP code, evaluation through the IR is
    bit-identical (exact Fractions and floats) to the pre-IR loops.
    """
    if plan.constant is not None:
        root = LIFT_TRUE if plan.constant else LIFT_FALSE
    else:
        kernels = tuple(HRunKernel(run, plan.k) for run in plan.runs)
        root = InclusionExclusion(
            tuple(
                (
                    coefficient,
                    IndependentUnion(tuple(kernels[rid] for rid in ids)),
                )
                for coefficient, ids in plan.terms
            )
        )
    return LiftPlan(query=plan, root=root)


def lattice_cache_counters() -> dict[str, dict[str, int]]:
    """Hit/miss/size counters of the module-level lattice ``lru_cache``s
    (all bounded at :data:`EXTENSIONAL_PLAN_CACHE_LIMIT`-sized maxima, so
    long-lived serving processes cannot grow them without limit).  These
    are process-wide — plans are data-independent, so every shard shares
    the same lattice walks."""
    counters: dict[str, dict[str, int]] = {}
    for name, cached in (
        ("mobius_terms", _mobius_terms_of),
        ("cnf_lattice", cnf_lattice),
        ("dnf_lattice", dnf_lattice),
        ("plan_ir", plan_ir),
    ):
        info = cached.cache_info()
        counters[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "size": info.currsize,
            "limit": info.maxsize,
        }
    return counters


@dataclass
class ExtensionalPlanCacheStats:
    """Counters of one plan cache, in the mold of
    :class:`repro.pqe.engine.CompilationCacheStats`.

    ``lattice_caches`` carries the process-wide lattice ``lru_cache``
    counters (:func:`lattice_cache_counters`) so serving stats expose
    them without a second channel; hand-built snapshots may leave it
    empty."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    lattice_caches: dict[str, dict[str, int]] = field(default_factory=dict)


class ExtensionalPlanCache:
    """A thread-safe LRU of extensional plans keyed by the query.

    Plans depend only on the query (never on data), so one entry serves
    every TID the query is evaluated over.  The module keeps one default
    instance behind :func:`probability`; :mod:`repro.serving` gives every
    shard its own, mirroring the per-shard compilation caches.  A build
    that raises (unsafe or non-monotone query) is *not* cached and counts
    as neither hit nor miss.

    Keys may be :class:`~repro.queries.hqueries.HQuery` (cached value an
    :class:`ExtensionalPlan`) or any query :func:`repro.pqe.lift.lift_query`
    accepts — UCQs and CQs — cached as a :class:`~repro.pqe.lift.LiftPlan`.
    """

    def __init__(self, limit: int = EXTENSIONAL_PLAN_CACHE_LIMIT):
        if limit < 1:
            raise ValueError(f"cache limit must be positive, got {limit}")
        self.limit = limit
        self._entries: OrderedDict[object, ExtensionalPlan | LiftPlan] = (
            OrderedDict()
        )
        self._stats = ExtensionalPlanCacheStats()
        self._lock = threading.RLock()

    def get_or_build(self, query) -> tuple[ExtensionalPlan | LiftPlan, bool]:
        """The cached plan for ``query``, building on a miss.  Returns
        ``(plan, was_cache_hit)`` — an :class:`ExtensionalPlan` for
        h-queries, a :class:`~repro.pqe.lift.LiftPlan` for general UCQs.

        :raises UnsafeQueryError: as :func:`build_plan` /
            :func:`repro.pqe.lift.lift_query`.
        """
        with self._lock:
            cached = self._entries.get(query)
            if cached is not None:
                self._entries.move_to_end(query)
                self._stats.hits += 1
                return cached, True
        if isinstance(query, HQuery):
            plan = build_plan(query)
        else:
            plan = lift_query(query)
        with self._lock:
            racing = self._entries.get(query)
            if racing is not None:
                self._entries.move_to_end(query)
                self._stats.hits += 1
                return racing, True
            self._stats.misses += 1
            self._entries[query] = plan
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
        return plan, False

    def stats(self) -> ExtensionalPlanCacheStats:
        """A coherent snapshot of the counters, including the process-wide
        lattice ``lru_cache`` counters (:func:`lattice_cache_counters`)."""
        with self._lock:
            return ExtensionalPlanCacheStats(
                self._stats.hits,
                self._stats.misses,
                self._stats.evictions,
                lattice_cache_counters(),
            )

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._stats.hits = 0
            self._stats.misses = 0
            self._stats.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_DEFAULT_PLAN_CACHE = ExtensionalPlanCache()


def plan_for(
    query: HQuery, cache: ExtensionalPlanCache | None = None
) -> tuple[ExtensionalPlan, bool]:
    """The cached extensional plan of ``query`` (the default cache's
    unless a caller-owned one is passed); returns ``(plan, was_hit)``.

    :raises UnsafeQueryError: as :func:`build_plan`.
    """
    return (cache if cache is not None else _DEFAULT_PLAN_CACHE).get_or_build(
        query
    )


def extensional_plan_stats(
    cache: ExtensionalPlanCache | None = None,
) -> ExtensionalPlanCacheStats:
    """A snapshot of the plan-cache counters (the default cache's unless
    a caller-owned one is passed) — the extensional analogue of
    :func:`repro.pqe.engine.compilation_cache_stats`."""
    return (cache if cache is not None else _DEFAULT_PLAN_CACHE).stats()


def clear_extensional_plan_cache(
    cache: ExtensionalPlanCache | None = None,
) -> None:
    """Drop all cached plans and reset the counters (the default cache's
    unless a caller-owned one is passed)."""
    (cache if cache is not None else _DEFAULT_PLAN_CACHE).clear()


# ----------------------------------------------------------------------
# Evaluation: one batched sweep over the plan's distinct runs
# ----------------------------------------------------------------------


def _evaluate_exact(
    plan: ExtensionalPlan | LiftPlan, tid: TupleIndependentDatabase
) -> Fraction:
    if isinstance(plan, LiftPlan):  # a general UCQ plan from the cache
        return evaluate_plan(plan, tid)
    if plan.constant is not None:
        return plan.constant
    return evaluate_plan(plan_ir(plan), tid)


def _evaluate_float(
    plan: ExtensionalPlan | LiftPlan, tid: TupleIndependentDatabase
) -> float:
    if isinstance(plan, LiftPlan):
        return evaluate_plan_float(plan, tid)
    if plan.constant is not None:
        return float(plan.constant)
    return evaluate_plan_float(plan_ir(plan), tid)


def probability(
    query: HQuery,
    tid: TupleIndependentDatabase,
    *,
    plan: ExtensionalPlan | None = None,
) -> Fraction:
    """``Pr(Q_phi)`` by lifted inference (Möbius inversion + safe plans).

    Handles every monotone ``phi``: constants directly, degenerate ones via
    the same lattice formula (their lattices never contain the full index
    set), and nondegenerate ones when ``mu(0̂,1̂) = 0``.  Exact
    :class:`~fractions.Fraction` arithmetic on the columnar integer
    backend; ``plan`` reuses a plan the caller already holds (the default
    goes through the module's plan cache).

    :raises UnsafeQueryError: if ``phi`` is not monotone, or is monotone
        nondegenerate with non-zero CNF-lattice Möbius value (then
        ``PQE(Q_phi)`` is #P-hard and has no extensional plan).
    """
    if plan is None:
        plan, _ = _DEFAULT_PLAN_CACHE.get_or_build(query)
    return _evaluate_exact(plan, tid)


def probability_float(
    query: HQuery,
    tid: TupleIndependentDatabase,
    *,
    plan: ExtensionalPlan | None = None,
) -> float:
    """The float backend of :func:`probability`: vectorized run sweeps
    over the columnar view — the extensional analogue of
    :meth:`~repro.pqe.intensional.CompiledLineage.probability_float`.

    :raises UnsafeQueryError: as :func:`probability`.
    """
    if plan is None:
        plan, _ = _DEFAULT_PLAN_CACHE.get_or_build(query)
    return _evaluate_float(plan, tid)


def probability_batch(
    query: HQuery,
    tids: list[TupleIndependentDatabase],
    *,
    plan: ExtensionalPlan | None = None,
) -> list[float]:
    """Float-mode ``Pr(Q_phi)`` over many TIDs, sharing one plan.

    Each TID's columnar view is resolved (through its own version-keyed
    cache) and swept independently, so batch composition never changes
    any individual float: the result is bit-for-float identical to
    mapping :func:`probability_float` over the TIDs — the property the
    serving layer's microbatcher relies on.

    :raises UnsafeQueryError: as :func:`probability`.
    """
    if plan is None:
        plan, _ = _DEFAULT_PLAN_CACHE.get_or_build(query)
    return [_evaluate_float(plan, tid) for tid in tids]


def probability_by_raw_inclusion_exclusion(
    query: HQuery, tid: TupleIndependentDatabase
) -> Fraction:
    """The *uncollapsed* inclusion–exclusion over all ``2^{n+1} - 1``
    nonempty clause subsets — exponentially many terms in the number of CNF
    clauses (still polynomial in the data).  Agrees with
    :func:`probability`; kept separate to exhibit the collapse the Möbius
    function performs.

    :raises UnsafeQueryError: as for :func:`probability`.
    """
    phi = query.phi
    if not phi.is_monotone():
        raise UnsafeQueryError(
            "the extensional engine handles UCQs (monotone phi) only"
        )
    if phi.is_bottom():
        return Fraction(0)
    if phi.is_top():
        return Fraction(1)
    clauses = phi.minimized_cnf()
    # Group subsets by their union to let hard subqueries cancel before any
    # evaluation, exactly as the lattice does.
    coefficient_of: dict[frozenset[int], int] = {}
    for size in range(1, len(clauses) + 1):
        sign = 1 if size % 2 == 1 else -1
        for subset in combinations(range(len(clauses)), size):
            union: frozenset[int] = frozenset()
            for i in subset:
                union |= clauses[i]
            coefficient_of[union] = coefficient_of.get(union, 0) + sign
    total = Fraction(0)
    for union, coefficient in sorted(
        coefficient_of.items(), key=lambda kv: (len(kv[0]), sorted(kv[0]))
    ):
        if coefficient == 0:
            continue
        try:
            term = disjunction_probability(union, query.k, tid)
        except UnsafeSubqueryError as error:
            raise UnsafeQueryError(
                "query is unsafe: the full disjunction survives "
                "inclusion–exclusion with non-zero coefficient"
            ) from error
        total += coefficient * term
    return total


def is_safe(query: HQuery) -> bool:
    """The dichotomy test (Proposition 3.5 + Corollary 3.9) for UCQs:
    degenerate monotone functions are safe; nondegenerate ones are safe iff
    ``e(phi) = 0`` (equivalently ``mu_CNF(0̂,1̂) = 0``).

    :raises ValueError: if ``phi`` is not monotone (the dichotomy of [12]
        does not apply; see :mod:`repro.pqe.dichotomy` for the paper's
        extension).
    """
    phi = query.phi
    if not phi.is_monotone():
        raise ValueError("safety via [12] is defined for monotone phi only")
    if phi.is_degenerate():
        return True
    return phi.euler_characteristic() == 0

"""Extensional (lifted-inference) evaluation of H+-queries.

This is the Dalvi–Suciu side of the paper's dichotomy, specialized to the
H+-queries (Proposition 3.5): write the monotone ``phi`` in minimized CNF
``C_0 ∧ ... ∧ C_n``, apply inclusion–exclusion

``Pr(∧_i C_i) = sum over nonempty s of (-1)^{|s|+1} Pr(∨_{i in s} C_i)``,

and observe that ``∨_{i in s} C_i`` only depends on the *union*
``d_s = ∪_{i in s} C_i`` — the CNF-lattice element.  Collapsing equal
unions turns the coefficients into Möbius-function values of the lattice
(this is the Möbius inversion step the paper's title refers to), so

``Pr(Q_phi) = - sum over lattice elements u < 1̂ of mu(u, 1̂) * Pr(Q_u)``

with ``Q_u = ∨_{j in u} h_{k,j}``.  Every ``u`` except the bottom
``0̂ = DEP(phi)`` is a proper subset of ``{0..k}`` and is lifted by
:mod:`repro.pqe.safe_plans`; the bottom is the #P-hard full disjunction,
and the query is safe exactly when its coefficient ``mu(0̂, 1̂)`` — equal to
``e(phi)`` by Lemma 3.8 — vanishes, letting the hard subquery *cancel out*.

Both the collapsed (Möbius) and the uncollapsed (raw inclusion–exclusion)
evaluations are provided; they agree term-for-term after grouping, which a
test verifies.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations

from repro.db.tid import TupleIndependentDatabase
from repro.lattice.cnf_lattice import cnf_lattice
from repro.pqe.safe_plans import UnsafeSubqueryError, disjunction_probability
from repro.queries.hqueries import HQuery


class UnsafeQueryError(ValueError):
    """Raised when the extensional engine is given an unsafe query (the
    dichotomy's #P-hard side: nondegenerate monotone ``phi`` with
    ``mu_CNF(0̂,1̂) = e(phi) != 0``)."""


def mobius_terms(query: HQuery) -> list[tuple[frozenset[int], int]]:
    """The lattice elements and their coefficients ``-mu(u, 1̂)`` as used by
    the lifted evaluation, for a monotone non-constant ``phi``; terms with
    zero coefficient are dropped (this is where hard subqueries cancel)."""
    phi = query.phi
    if not phi.is_monotone():
        raise UnsafeQueryError(
            "the extensional engine handles UCQs (monotone phi) only"
        )
    lattice = cnf_lattice(phi)
    column = lattice.mobius_column()
    terms = []
    for element, mobius_value in column.items():
        if element == lattice.top:  # u = 1̂ contributes Pr(empty ∨) = 0.
            continue
        if mobius_value == 0:
            continue
        terms.append((element, -mobius_value))
    return terms


def probability(query: HQuery, tid: TupleIndependentDatabase) -> Fraction:
    """``Pr(Q_phi)`` by lifted inference (Möbius inversion + safe plans).

    Handles every monotone ``phi``: constants directly, degenerate ones via
    the same lattice formula (their lattices never contain the full index
    set), and nondegenerate ones when ``mu(0̂,1̂) = 0``.

    :raises UnsafeQueryError: if ``phi`` is not monotone, or is monotone
        nondegenerate with non-zero CNF-lattice Möbius value (then
        ``PQE(Q_phi)`` is #P-hard and has no extensional plan).
    """
    phi = query.phi
    if not phi.is_monotone():
        raise UnsafeQueryError(
            "the extensional engine handles UCQs (monotone phi) only"
        )
    if phi.is_bottom():
        return Fraction(0)
    if phi.is_top():
        return Fraction(1)
    total = Fraction(0)
    for element, coefficient in mobius_terms(query):
        try:
            term = disjunction_probability(element, query.k, tid)
        except UnsafeSubqueryError as error:
            raise UnsafeQueryError(
                "query is unsafe: the #P-hard bottom subquery has non-zero "
                f"Möbius coefficient {-coefficient} (= -e(phi) by Lemma 3.8)"
            ) from error
        total += coefficient * term
    return total


def probability_by_raw_inclusion_exclusion(
    query: HQuery, tid: TupleIndependentDatabase
) -> Fraction:
    """The *uncollapsed* inclusion–exclusion over all ``2^{n+1} - 1``
    nonempty clause subsets — exponentially many terms in the number of CNF
    clauses (still polynomial in the data).  Agrees with
    :func:`probability`; kept separate to exhibit the collapse the Möbius
    function performs.

    :raises UnsafeQueryError: as for :func:`probability`.
    """
    phi = query.phi
    if not phi.is_monotone():
        raise UnsafeQueryError(
            "the extensional engine handles UCQs (monotone phi) only"
        )
    if phi.is_bottom():
        return Fraction(0)
    if phi.is_top():
        return Fraction(1)
    clauses = phi.minimized_cnf()
    # Group subsets by their union to let hard subqueries cancel before any
    # evaluation, exactly as the lattice does.
    coefficient_of: dict[frozenset[int], int] = {}
    for size in range(1, len(clauses) + 1):
        sign = 1 if size % 2 == 1 else -1
        for subset in combinations(range(len(clauses)), size):
            union: frozenset[int] = frozenset()
            for i in subset:
                union |= clauses[i]
            coefficient_of[union] = coefficient_of.get(union, 0) + sign
    total = Fraction(0)
    for union, coefficient in sorted(
        coefficient_of.items(), key=lambda kv: (len(kv[0]), sorted(kv[0]))
    ):
        if coefficient == 0:
            continue
        try:
            term = disjunction_probability(union, query.k, tid)
        except UnsafeSubqueryError as error:
            raise UnsafeQueryError(
                "query is unsafe: the full disjunction survives "
                "inclusion–exclusion with non-zero coefficient"
            ) from error
        total += coefficient * term
    return total


def is_safe(query: HQuery) -> bool:
    """The dichotomy test (Proposition 3.5 + Corollary 3.9) for UCQs:
    degenerate monotone functions are safe; nondegenerate ones are safe iff
    ``e(phi) = 0`` (equivalently ``mu_CNF(0̂,1̂) = 0``).

    :raises ValueError: if ``phi`` is not monotone (the dichotomy of [12]
        does not apply; see :mod:`repro.pqe.dichotomy` for the paper's
        extension).
    """
    phi = query.phi
    if not phi.is_monotone():
        raise ValueError("safety via [12] is defined for monotone phi only")
    if phi.is_degenerate():
        return True
    return phi.euler_characteristic() == 0

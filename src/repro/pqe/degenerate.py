"""Lineage compilation for degenerate H-queries (Proposition 3.7 /
Appendix B.1).

For a degenerate ``phi`` (not depending on some variable ``l``), the paper
writes ``phi = ∨_{nu |= phi, l not in nu} (phi_nu ∨ phi_{nu^(l)})`` — a
deterministic disjunction over *pair queries*.  Each pair query
``Q_{phi_nu ∨ phi_{nu^(l)}}`` asserts an exact pattern of the ``h_{k,i}``
for every ``i != l`` and splits as ``Q^L ∧ Q^R``:

* ``Q^L`` constrains indices ``{0..l-1}`` and touches only the relations
  ``R, S_1, ..., S_l``;
* ``Q^R`` constrains indices ``{l+1..k}`` and touches only
  ``S_{l+1}, ..., S_k, T``;

so the conjunction is decomposable.  Each side compiles to an OBDD under
the interleaved variable order ``Pi_L`` of Appendix B.1 (x-major for the
left side, y-major for the right) via a product automaton with O(2^k)
states — constant in data complexity — built with
:mod:`repro.obdd.builder`.

The exported constructions:

* :func:`pair_query_circuit` — d-D lineage of one pair query (the template
  leaves of Proposition 4.4);
* :func:`degenerate_lineage_circuit` — d-D lineage of any degenerate
  H-query (Proposition 3.7 as used by the paper: the Q_phi ∈ d-D(PTIME)
  part);
* :func:`degenerate_lineage_obdd` — the single-OBDD form (the literal
  statement of Proposition 3.7), combining the pair OBDDs with ``apply``
  under one shared order.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.circuits.circuit import Circuit
from repro.core.boolean_function import BooleanFunction
from repro.db.relation import Instance, TupleId
from repro.obdd.builder import LayeredAutomaton, build_obdd
from repro.obdd.obdd import ObddManager
from repro.obdd.to_circuit import obdd_into_circuit


def _sides(db: Instance) -> tuple[list[Hashable], list[Hashable]]:
    """Active x-side and y-side domains of an instance over the H-schema."""
    xs: set[Hashable] = set()
    ys: set[Hashable] = set()
    for tuple_id in db.tuple_ids():
        if tuple_id.relation == "R":
            xs.add(tuple_id.values[0])
        elif tuple_id.relation == "T":
            ys.add(tuple_id.values[0])
        elif tuple_id.relation.startswith("S"):
            xs.add(tuple_id.values[0])
            ys.add(tuple_id.values[1])
    return sorted(xs, key=repr), sorted(ys, key=repr)


def left_variable_order(l: int, db: Instance) -> list[TupleId]:
    """The order ``Pi_L`` of Appendix B.1 for the left side (indices
    ``0..l-1``, relations ``R, S_1..S_l``): for each ``x``, first ``R(x)``,
    then for each ``y`` the block ``S_1(x,y), ..., S_l(x,y)``."""
    xs, ys = _sides(db)
    order: list[TupleId] = []
    for x in xs:
        order.append(TupleId("R", (x,)))
        for y in ys:
            for i in range(1, l + 1):
                order.append(TupleId(f"S{i}", (x, y)))
    return order


def right_variable_order(l: int, k: int, db: Instance) -> list[TupleId]:
    """The mirrored order for the right side (indices ``l+1..k``,
    relations ``S_{l+1}..S_k, T``): for each ``y``, first ``T(y)``, then
    for each ``x`` the block ``S_k(x,y), ..., S_{l+1}(x,y)`` (descending,
    so that adjacent relation indices are adjacent in the scan)."""
    xs, ys = _sides(db)
    order: list[TupleId] = []
    for y in ys:
        order.append(TupleId("T", (y,)))
        for x in xs:
            for i in range(k, l, -1):
                order.append(TupleId(f"S{i}", (x, y)))
    return order


class _SideAutomaton:
    """Shared automaton logic for both sides.

    State: ``(satisfied_mask, unary_value, previous_s_value)`` where

    * ``satisfied_mask`` has bit ``j`` set when local query ``j`` is already
      witnessed (left side: ``h_{k,j}`` for ``j in 0..l-1``; right side:
      ``h_{k, k - j}`` for ``j in 0..k-l-2``... — the caller supplies the
      decoding);
    * ``unary_value`` is the current block's ``R(x)`` / ``T(y)`` value;
    * ``previous_s_value`` is the previous ``S`` tuple in the current
      ``(x, y)`` chain.

    The transition is driven by a per-position event tag precomputed from
    the variable order: ``("unary",)`` resets the block;
    ``("s", chain_position)`` advances the chain (``chain_position`` 0
    pairs with the unary, others with their predecessor).
    """

    def __init__(self, order: list[TupleId], events: list[tuple], nqueries: int):
        if len(order) != len(events):
            raise ValueError("order/events length mismatch")
        self.order = order
        self.events = events
        self.nqueries = nqueries

    def automaton(self, accepting_mask: int) -> LayeredAutomaton:
        """The layered automaton accepting exactly the runs whose final
        satisfied mask equals ``accepting_mask``."""
        events = self.events

        def transition(state, position, value):
            mask, unary, prev = state
            kind = events[position]
            if kind[0] == "unary":
                return (mask, value, False)
            chain_position = kind[1]
            if chain_position == 0:
                if unary and value:
                    mask |= 1
                return (mask, unary, value)
            if prev and value:
                mask |= 1 << chain_position
            return (mask, unary, value)

        return LayeredAutomaton(
            order=self.order,
            initial=(0, False, False),
            transition=transition,
            accepting=lambda state: state[0] == accepting_mask,
        )


def left_side_machine(l: int, db: Instance) -> _SideAutomaton:
    """The left-side automaton: local query ``j`` (bit ``j``) is
    ``h_{k,j}``; in a block for ``(x, y)``, reading ``S_{j+1}(x,y)`` pairs
    with ``S_j(x,y)`` (or with ``R(x)`` for ``j = 0``)."""
    order = left_variable_order(l, db)
    events: list[tuple] = []
    for tuple_id in order:
        if tuple_id.relation == "R":
            events.append(("unary",))
        else:
            index = int(tuple_id.relation[1:])  # S_i -> chain position i-1
            events.append(("s", index - 1))
    return _SideAutomaton(order, events, l)


def right_side_machine(l: int, k: int, db: Instance) -> _SideAutomaton:
    """The right-side automaton: local query ``j`` (bit ``j``) is
    ``h_{k, k-j}``; scanning ``S_k, S_{k-1}, ...`` downward, reading
    ``S_i(x,y)`` pairs with ``S_{i+1}(x,y)`` (or with ``T(y)`` for
    ``i = k``)."""
    order = right_variable_order(l, k, db)
    events: list[tuple] = []
    for tuple_id in order:
        if tuple_id.relation == "T":
            events.append(("unary",))
        else:
            index = int(tuple_id.relation[1:])  # S_i -> chain position k-i
            events.append(("s", k - index))
    return _SideAutomaton(order, events, k - l)


def _left_accepting_mask(pattern: int, l: int) -> int:
    """Bits 0..l-1 of the h-pattern, which the left machine tracks
    directly."""
    return pattern & ((1 << l) - 1)


def _right_accepting_mask(pattern: int, l: int, k: int) -> int:
    """The right machine tracks ``h_{k, k-j}`` at bit ``j``; translate the
    pattern bits ``l+1..k`` accordingly."""
    mask = 0
    for i in range(l + 1, k + 1):
        if pattern >> i & 1:
            mask |= 1 << (k - i)
    return mask


def pair_query_circuit(
    k: int,
    l: int,
    pattern: int,
    db: Instance,
    circuit: Circuit,
) -> int:
    """Build, inside ``circuit``, the d-D lineage of the pair query
    ``Q_{phi_nu ∨ phi_{nu^(l)}}``, where ``pattern`` is the mask of ``nu``
    restricted to indices ``!= l`` (bit ``l`` is ignored).  Returns the
    output gate id.

    The circuit is the decomposable conjunction of the two side OBDDs
    (constant sides for ``l = 0`` / ``l = k`` collapse to the other side).
    """
    if not 0 <= l <= k:
        raise ValueError(f"flip variable {l} out of range for k = {k}")
    parts: list[int] = []
    if l > 0:
        machine = left_side_machine(l, db)
        manager = ObddManager(machine.order)
        _, root = build_obdd(
            machine.automaton(_left_accepting_mask(pattern, l)), manager
        )
        parts.append(obdd_into_circuit(manager, root, circuit))
    if l < k:
        machine = right_side_machine(l, k, db)
        manager = ObddManager(machine.order)
        _, root = build_obdd(
            machine.automaton(_right_accepting_mask(pattern, l, k)), manager
        )
        parts.append(obdd_into_circuit(manager, root, circuit))
    if not parts:
        raise AssertionError("unreachable: l cannot be both 0 and k")
    return circuit.add_and(parts)


def degenerate_lineage_circuit(
    phi: BooleanFunction, db: Instance, missing_variable: int | None = None
) -> Circuit:
    """Proposition 3.7 (d-D form): the lineage of ``Q_phi`` for degenerate
    ``phi``, as the deterministic disjunction of pair-query circuits over
    the models of ``phi`` grouped by the missing variable.

    :param missing_variable: a variable ``phi`` does not depend on; found
        automatically when omitted.
    :raises ValueError: if ``phi`` is nondegenerate.
    """
    k = phi.nvars - 1
    l = missing_variable
    if l is None:
        dependencies = phi.dependency_set()
        l = next(
            (v for v in range(phi.nvars) if v not in dependencies), None
        )
    if l is None or phi.depends_on(l):
        raise ValueError(
            "degenerate_lineage_circuit requires a variable phi ignores"
        )
    circuit = Circuit()
    branches = []
    bit = 1 << l
    for model in phi.satisfying_masks():
        if model & bit:
            continue  # The pair {model, model | bit} is handled once.
        branches.append(pair_query_circuit(k, l, model, db, circuit))
    circuit.set_output(circuit.add_or(branches))
    return circuit


def degenerate_lineage_obdd(
    phi: BooleanFunction, db: Instance, missing_variable: int | None = None
) -> tuple[ObddManager, int]:
    """Proposition 3.7 (literal OBDD form): a single OBDD for the lineage
    of a degenerate ``Q_phi``, under the concatenated left/right order,
    combining the per-side, per-pair OBDDs with ``apply``.

    Data complexity is polynomial: each pair OBDD has constant width and
    the number of pairs is constant, so the apply-products stay polynomial.
    """
    k = phi.nvars - 1
    l = missing_variable
    if l is None:
        dependencies = phi.dependency_set()
        l = next(
            (v for v in range(phi.nvars) if v not in dependencies), None
        )
    if l is None or phi.depends_on(l):
        raise ValueError(
            "degenerate_lineage_obdd requires a variable phi ignores"
        )
    left_machine = left_side_machine(l, db) if l > 0 else None
    right_machine = right_side_machine(l, k, db) if l < k else None
    order: list[TupleId] = []
    if left_machine is not None:
        order.extend(left_machine.order)
    if right_machine is not None:
        order.extend(right_machine.order)
    manager = ObddManager(order)
    result = manager.terminal(False)
    bit = 1 << l
    for model in phi.satisfying_masks():
        if model & bit:
            continue
        parts = []
        if left_machine is not None:
            _, root = build_obdd(
                left_machine.automaton(_left_accepting_mask(model, l)),
                manager,
            )
            parts.append(root)
        if right_machine is not None:
            _, root = build_obdd(
                right_machine.automaton(_right_accepting_mask(model, l, k)),
                manager,
            )
            parts.append(root)
        result = manager.apply("or", result, manager.conjoin_all(parts))
    return manager, result

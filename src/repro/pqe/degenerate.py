"""Lineage compilation for degenerate H-queries (Proposition 3.7 /
Appendix B.1).

For a degenerate ``phi`` (not depending on some variable ``l``), the paper
writes ``phi = ∨_{nu |= phi, l not in nu} (phi_nu ∨ phi_{nu^(l)})`` — a
deterministic disjunction over *pair queries*.  Each pair query
``Q_{phi_nu ∨ phi_{nu^(l)}}`` asserts an exact pattern of the ``h_{k,i}``
for every ``i != l`` and splits as ``Q^L ∧ Q^R``:

* ``Q^L`` constrains indices ``{0..l-1}`` and touches only the relations
  ``R, S_1, ..., S_l``;
* ``Q^R`` constrains indices ``{l+1..k}`` and touches only
  ``S_{l+1}, ..., S_k, T``;

so the conjunction is decomposable.  Each side compiles to an OBDD under
the interleaved variable order ``Pi_L`` of Appendix B.1 (x-major for the
left side, y-major for the right) via a product automaton with O(2^k)
states — constant in data complexity — built with
:mod:`repro.obdd.builder`.

The exported constructions:

* :func:`pair_query_circuit` — d-D lineage of one pair query (the template
  leaves of Proposition 4.4);
* :func:`degenerate_lineage_circuit` — d-D lineage of any degenerate
  H-query (Proposition 3.7 as used by the paper: the Q_phi ∈ d-D(PTIME)
  part);
* :func:`degenerate_lineage_obdd` — the single-OBDD form (the literal
  statement of Proposition 3.7), combining the pair OBDDs with ``apply``
  under one shared order.

Compilation fast path (PR 2): the side automata are *tabular*
(integer-coded states, precomputed per-event transition tables), every
domain scan / variable order / machine / per-side :class:`ObddManager` is
memoized on the instance against its content version, and all pair
queries of a leaf are built by one multi-accepting-mask family sweep
(:func:`repro.obdd.builder.build_obdd_family`) over the shared manager,
so identical OBDD nodes dedupe across pairs before they ever reach a
circuit arena.
"""

from __future__ import annotations

import threading
from collections.abc import Hashable, Iterable

from repro.circuits.circuit import Circuit
from repro.core.boolean_function import BooleanFunction
from repro.db.relation import Instance, TupleId
from repro.obdd.builder import TabularAutomaton, build_obdd_family
from repro.obdd.obdd import ObddManager
from repro.obdd.to_circuit import expansion_cache, obdd_into_circuit


def _compute_sides(db: Instance) -> tuple[list[Hashable], list[Hashable]]:
    xs: set[Hashable] = set()
    ys: set[Hashable] = set()
    for tuple_id in db.tuple_ids():
        if tuple_id.relation == "R":
            xs.add(tuple_id.values[0])
        elif tuple_id.relation == "T":
            ys.add(tuple_id.values[0])
        elif tuple_id.relation.startswith("S"):
            xs.add(tuple_id.values[0])
            ys.add(tuple_id.values[1])
    return sorted(xs, key=repr), sorted(ys, key=repr)


def _sides(db: Instance) -> tuple[list[Hashable], list[Hashable]]:
    """Active x-side and y-side domains of an instance over the H-schema,
    memoized on the instance (one domain scan per content version instead
    of one per pair query)."""
    return db.cached_derivation(("hquery.sides",), _compute_sides)


def left_variable_order(l: int, db: Instance) -> list[TupleId]:
    """The order ``Pi_L`` of Appendix B.1 for the left side (indices
    ``0..l-1``, relations ``R, S_1..S_l``): for each ``x``, first ``R(x)``,
    then for each ``y`` the block ``S_1(x,y), ..., S_l(x,y)``.
    Memoized per ``(l, instance content)``."""

    def build(db: Instance) -> list[TupleId]:
        xs, ys = _sides(db)
        order: list[TupleId] = []
        for x in xs:
            order.append(TupleId("R", (x,)))
            for y in ys:
                for i in range(1, l + 1):
                    order.append(TupleId(f"S{i}", (x, y)))
        return order

    return list(db.cached_derivation(("hquery.left_order", l), build))


def right_variable_order(l: int, k: int, db: Instance) -> list[TupleId]:
    """The mirrored order for the right side (indices ``l+1..k``,
    relations ``S_{l+1}..S_k, T``): for each ``y``, first ``T(y)``, then
    for each ``x`` the block ``S_k(x,y), ..., S_{l+1}(x,y)`` (descending,
    so that adjacent relation indices are adjacent in the scan).
    Memoized per ``(l, k, instance content)``."""

    def build(db: Instance) -> list[TupleId]:
        xs, ys = _sides(db)
        order: list[TupleId] = []
        for y in ys:
            order.append(TupleId("T", (y,)))
            for x in xs:
                for i in range(k, l, -1):
                    order.append(TupleId(f"S{i}", (x, y)))
        return order

    return list(db.cached_derivation(("hquery.right_order", l, k), build))


# ----------------------------------------------------------------------
# Tabular side machines
# ----------------------------------------------------------------------
#
# The side automata of Appendix B.1 track the state
# ``(satisfied_mask, unary_value, previous_s_value)``:
#
# * ``satisfied_mask`` has bit ``j`` set when local query ``j`` is already
#   witnessed (left side: ``h_{k,j}`` for ``j in 0..l-1``; right side:
#   ``h_{k, k - j}`` for ``j in 0..k-l-2``);
# * ``unary_value`` is the current block's ``R(x)`` / ``T(y)`` value;
# * ``previous_s_value`` is the previous ``S`` tuple in the current
#   ``(x, y)`` chain.
#
# States are integer-coded as ``mask * 4 + unary * 2 + prev`` and the
# transition becomes a table lookup: every position of the variable order
# carries an *event* — ``("unary",)`` resets the block, ``("s", c)``
# advances the chain (chain position 0 pairs with the unary, others with
# their predecessor) — and positions with the same event share one
# precomputed table, so building the machine costs
# ``O(#events × states)`` instead of a closure call per (state, layer).


def _event_tables(
    event: tuple, num_states: int
) -> tuple[list[int], list[int]]:
    """The (on-False, on-True) successor tables of one event kind."""
    low = [0] * num_states
    high = [0] * num_states
    for state in range(num_states):
        mask, unary, prev = state >> 2, state >> 1 & 1, state & 1
        if event[0] == "unary":
            low[state] = mask << 2  # (mask, value=0, prev=0)
            high[state] = (mask << 2) | 2  # (mask, value=1, prev=0)
        else:
            chain_position = event[1]
            low[state] = (mask << 2) | (unary << 1)
            if chain_position == 0:
                high_mask = mask | 1 if unary else mask
            else:
                high_mask = mask | (1 << chain_position) if prev else mask
            high[state] = (high_mask << 2) | (unary << 1) | 1
    return low, high


def _tabular_machine(
    order: list[TupleId], events: list[tuple], nqueries: int
) -> TabularAutomaton:
    num_states = 4 << nqueries
    tables = {
        event: _event_tables(event, num_states) for event in set(events)
    }
    return TabularAutomaton(
        order=order,
        num_states=num_states,
        initial=0,
        low_tables=[tables[event][0] for event in events],
        high_tables=[tables[event][1] for event in events],
        outcome=[state >> 2 for state in range(num_states)],
    )


def left_side_machine(l: int, db: Instance) -> TabularAutomaton:
    """The left-side tabular automaton: local query ``j`` (bit ``j`` of the
    outcome mask) is ``h_{k,j}``; in a block for ``(x, y)``, reading
    ``S_{j+1}(x,y)`` pairs with ``S_j(x,y)`` (or with ``R(x)`` for
    ``j = 0``).  Memoized per ``(l, instance content)``."""

    def build(db: Instance) -> TabularAutomaton:
        order = left_variable_order(l, db)
        events: list[tuple] = []
        for tuple_id in order:
            if tuple_id.relation == "R":
                events.append(("unary",))
            else:
                index = int(tuple_id.relation[1:])  # S_i -> position i-1
                events.append(("s", index - 1))
        return _tabular_machine(order, events, l)

    return db.cached_derivation(("hquery.left_machine", l), build)


def right_side_machine(l: int, k: int, db: Instance) -> TabularAutomaton:
    """The right-side tabular automaton: local query ``j`` (bit ``j``) is
    ``h_{k, k-j}``; scanning ``S_k, S_{k-1}, ...`` downward, reading
    ``S_i(x,y)`` pairs with ``S_{i+1}(x,y)`` (or with ``T(y)`` for
    ``i = k``).  Memoized per ``(l, k, instance content)``."""

    def build(db: Instance) -> TabularAutomaton:
        order = right_variable_order(l, k, db)
        events: list[tuple] = []
        for tuple_id in order:
            if tuple_id.relation == "T":
                events.append(("unary",))
            else:
                index = int(tuple_id.relation[1:])  # S_i -> position k-i
                events.append(("s", k - index))
        return _tabular_machine(order, events, k - l)

    return db.cached_derivation(("hquery.right_machine", l, k), build)


# ----------------------------------------------------------------------
# Shared per-side OBDD managers and the pair-query root cache
# ----------------------------------------------------------------------

_PAIR_CACHE_LOCK = threading.Lock()
_PAIR_CACHE_HITS = 0
_PAIR_CACHE_MISSES = 0


def pair_cache_counters() -> tuple[int, int]:
    """``(hits, misses)`` of the pair-query OBDD-root cache (a side root
    served from a shared manager vs. built by a family sweep)."""
    with _PAIR_CACHE_LOCK:
        return _PAIR_CACHE_HITS, _PAIR_CACHE_MISSES


def reset_pair_cache_counters() -> None:
    """Zero the pair-query cache counters."""
    global _PAIR_CACHE_HITS, _PAIR_CACHE_MISSES
    with _PAIR_CACHE_LOCK:
        _PAIR_CACHE_HITS = 0
        _PAIR_CACHE_MISSES = 0


class _SideCompiler:
    """One side's compilation state, shared by every pair query over the
    same instance content: the tabular machine, one :class:`ObddManager`
    over the side order (so identical OBDD nodes dedupe across pairs
    before they ever reach a circuit arena), and the mask→root cache
    filled by :func:`repro.obdd.builder.build_obdd_family` sweeps."""

    __slots__ = ("machine", "manager", "roots", "lock")

    def __init__(self, machine: TabularAutomaton):
        self.machine = machine
        self.manager = ObddManager(machine.order)
        self.roots: dict[int, int] = {}
        self.lock = threading.Lock()

    def root_for(self, mask: int) -> int:
        return self.roots_for([mask])[mask]

    def roots_for(self, masks: Iterable[int]) -> dict[int, int]:
        """The OBDD roots of the requested accepting masks; missing masks
        are built together in one family sweep."""
        global _PAIR_CACHE_HITS, _PAIR_CACHE_MISSES
        wanted = list(dict.fromkeys(masks))
        with self.lock:
            missing = [mask for mask in wanted if mask not in self.roots]
            if missing:
                _, built = build_obdd_family(
                    self.machine, missing, self.manager
                )
                self.roots.update(built)
            result = {mask: self.roots[mask] for mask in wanted}
        with _PAIR_CACHE_LOCK:
            _PAIR_CACHE_MISSES += len(missing)
            _PAIR_CACHE_HITS += len(wanted) - len(missing)
        return result


def _left_compiler(l: int, db: Instance) -> _SideCompiler:
    return db.cached_derivation(
        ("hquery.left_compiler", l),
        lambda db: _SideCompiler(left_side_machine(l, db)),
    )


def _right_compiler(l: int, k: int, db: Instance) -> _SideCompiler:
    return db.cached_derivation(
        ("hquery.right_compiler", l, k),
        lambda db: _SideCompiler(right_side_machine(l, k, db)),
    )


def prefetch_pair_queries(
    k: int, pairs: Iterable[tuple[int, int]], db: Instance
) -> None:
    """Warm the side-root caches for many pair queries ``(l, pattern)`` at
    once: masks sharing a side compiler are built together, one family
    sweep per side instead of one per pair."""
    left_masks: dict[int, list[int]] = {}
    right_masks: dict[int, list[int]] = {}
    for l, pattern in pairs:
        if l > 0:
            left_masks.setdefault(l, []).append(
                _left_accepting_mask(pattern, l)
            )
        if l < k:
            right_masks.setdefault(l, []).append(
                _right_accepting_mask(pattern, l, k)
            )
    for l, masks in left_masks.items():
        _left_compiler(l, db).roots_for(masks)
    for l, masks in right_masks.items():
        _right_compiler(l, k, db).roots_for(masks)


def pair_query_roots(
    k: int, l: int, pattern: int, db: Instance
) -> list[tuple[ObddManager, int]]:
    """The per-side ``(manager, root)`` pairs of one pair query, served
    from the instance's shared side compilers — effectively a cache keyed
    by ``(k, l, accepting mask, instance content)``, since the derivation
    store is invalidated exactly when the content fingerprint changes."""
    if not 0 <= l <= k:
        raise ValueError(f"flip variable {l} out of range for k = {k}")
    sides: list[tuple[ObddManager, int]] = []
    if l > 0:
        compiler = _left_compiler(l, db)
        root = compiler.root_for(_left_accepting_mask(pattern, l))
        sides.append((compiler.manager, root))
    if l < k:
        compiler = _right_compiler(l, k, db)
        root = compiler.root_for(_right_accepting_mask(pattern, l, k))
        sides.append((compiler.manager, root))
    return sides


def _left_accepting_mask(pattern: int, l: int) -> int:
    """Bits 0..l-1 of the h-pattern, which the left machine tracks
    directly."""
    return pattern & ((1 << l) - 1)


def _right_accepting_mask(pattern: int, l: int, k: int) -> int:
    """The right machine tracks ``h_{k, k-j}`` at bit ``j``; translate the
    pattern bits ``l+1..k`` accordingly."""
    mask = 0
    for i in range(l + 1, k + 1):
        if pattern >> i & 1:
            mask |= 1 << (k - i)
    return mask


def pair_query_circuit(
    k: int,
    l: int,
    pattern: int,
    db: Instance,
    circuit: Circuit,
) -> int:
    """Build, inside ``circuit``, the d-D lineage of the pair query
    ``Q_{phi_nu ∨ phi_{nu^(l)}}``, where ``pattern`` is the mask of ``nu``
    restricted to indices ``!= l`` (bit ``l`` is ignored).  Returns the
    output gate id.

    The circuit is the decomposable conjunction of the two side OBDDs
    (constant sides for ``l = 0`` / ``l = k`` collapse to the other side).

    The side OBDDs come from the instance's shared per-side managers (see
    :func:`pair_query_roots`) and each manager's nodes expand into
    ``circuit`` at most once (see
    :func:`repro.obdd.to_circuit.expansion_cache`), so pair queries
    sharing structure share gates instead of duplicating them.
    """
    parts = [
        obdd_into_circuit(
            manager,
            root,
            circuit,
            expansion_cache(circuit, manager, compact=True),
            compact=True,
        )
        for manager, root in pair_query_roots(k, l, pattern, db)
    ]
    if not parts:
        raise AssertionError("unreachable: l cannot be both 0 and k")
    return circuit.add_and(parts)


def degenerate_lineage_circuit(
    phi: BooleanFunction, db: Instance, missing_variable: int | None = None
) -> Circuit:
    """Proposition 3.7 (d-D form): the lineage of ``Q_phi`` for degenerate
    ``phi``, as the deterministic disjunction of pair-query circuits over
    the models of ``phi`` grouped by the missing variable.

    :param missing_variable: a variable ``phi`` does not depend on; found
        automatically when omitted.
    :raises ValueError: if ``phi`` is nondegenerate.
    """
    k = phi.nvars - 1
    l = missing_variable
    if l is None:
        dependencies = phi.dependency_set()
        l = next(
            (v for v in range(phi.nvars) if v not in dependencies), None
        )
    if l is None or phi.depends_on(l):
        raise ValueError(
            "degenerate_lineage_circuit requires a variable phi ignores"
        )
    circuit = Circuit(dedup=True)
    bit = 1 << l
    # The pair {model, model | bit} is handled once.
    models = [m for m in phi.satisfying_masks() if not m & bit]
    # Prefetch every side root in one family sweep per side, so the pair
    # loop below only expands already-built OBDDs.
    if models:
        if l > 0:
            _left_compiler(l, db).roots_for(
                _left_accepting_mask(m, l) for m in models
            )
        if l < k:
            _right_compiler(l, k, db).roots_for(
                _right_accepting_mask(m, l, k) for m in models
            )
    branches = [
        pair_query_circuit(k, l, model, db, circuit) for model in models
    ]
    circuit.set_output(circuit.add_or(branches))
    return circuit


def degenerate_lineage_obdd(
    phi: BooleanFunction, db: Instance, missing_variable: int | None = None
) -> tuple[ObddManager, int]:
    """Proposition 3.7 (literal OBDD form): a single OBDD for the lineage
    of a degenerate ``Q_phi``, under the concatenated left/right order,
    combining the per-side, per-pair OBDDs with ``apply``.

    Data complexity is polynomial: each pair OBDD has constant width and
    the number of pairs is constant, so the apply-products stay polynomial.
    """
    k = phi.nvars - 1
    l = missing_variable
    if l is None:
        dependencies = phi.dependency_set()
        l = next(
            (v for v in range(phi.nvars) if v not in dependencies), None
        )
    if l is None or phi.depends_on(l):
        raise ValueError(
            "degenerate_lineage_obdd requires a variable phi ignores"
        )
    left_machine = left_side_machine(l, db) if l > 0 else None
    right_machine = right_side_machine(l, k, db) if l < k else None
    order: list[TupleId] = []
    if left_machine is not None:
        order.extend(left_machine.order)
    if right_machine is not None:
        order.extend(right_machine.order)
    manager = ObddManager(order)
    bit = 1 << l
    models = [m for m in phi.satisfying_masks() if not m & bit]
    # One family sweep per side builds every needed per-pair OBDD at once
    # (the side orders are a prefix/suffix of the concatenated order, so
    # both machines are compatible with the shared manager).
    left_roots: dict[int, int] = {}
    right_roots: dict[int, int] = {}
    if models and left_machine is not None:
        _, left_roots = build_obdd_family(
            left_machine,
            (_left_accepting_mask(m, l) for m in models),
            manager,
        )
    if models and right_machine is not None:
        _, right_roots = build_obdd_family(
            right_machine,
            (_right_accepting_mask(m, l, k) for m in models),
            manager,
        )
    result = manager.terminal(False)
    for model in models:
        parts = []
        if left_machine is not None:
            parts.append(left_roots[_left_accepting_mask(model, l)])
        if right_machine is not None:
            parts.append(right_roots[_right_accepting_mask(model, l, k)])
        result = manager.apply("or", result, manager.conjoin_all(parts))
    return manager, result

"""Intensional evaluation: the paper's d-D compilation pipeline.

This module assembles the paper's main result (Theorem 5.2): for any
H-query ``Q_phi`` with ``e(phi) = 0`` — in particular every safe H+-query
(Corollary 5.3) — a deterministic decomposable circuit for the lineage
``Lin(Q_phi, D)`` is built in polynomial time (data complexity), and the
probability then falls out of one linear bottom-up pass.  The stages:

1. ``e(phi) = 0``  →  a ≃-derivation ``phi ~> ⊥``
   (:func:`repro.core.transformation.reduce_to_bottom`, Prop. 5.9);
2. the inverted derivation  →  a ¬-∨-template with degenerate pair-function
   leaves (:func:`repro.core.fragmentation.fragment`, Prop. 5.8);
3. each leaf  →  a d-D lineage circuit via the Appendix-B.1 OBDDs
   (:mod:`repro.pqe.degenerate`, Prop. 3.7);
4. plug the leaf circuits into the template's ¬/∨ gates (Prop. 4.4): the
   ∨-gates stay deterministic because distinct h-patterns are disjoint
   events, and no new ∧-gates are introduced.

The same plumbing also provides the Section-7 d-DNNF special case (when
the colored subgraph of ``G_V[phi]`` has a perfect matching, the template
needs no ¬-gates) and the Theorem-6.2(b) *transfer*: a d-D for ``Q_phi``
yields one for any ``Q_phi'`` with ``e(phi') = e(phi)``.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.circuits.circuit import Circuit
from repro.circuits.evaluator import EvaluationTape, tape_for
from repro.circuits.operations import copy_into
from repro.core.boolean_function import BooleanFunction
from repro.core.fragmentation import (
    Fragmentation,
    Hole,
    NotNode,
    OrNode,
    fragment,
    fragment_via_matching,
)
from repro.core.transformation import transform
from repro.db.relation import Instance
from repro.db.tid import TupleIndependentDatabase
from repro.matching.perfect_matching import colored_matching
from repro.pqe.degenerate import (
    degenerate_lineage_circuit,
    pair_query_circuit,
    prefetch_pair_queries,
)
from repro.queries.hqueries import HQuery


class NotCompilableError(ValueError):
    """Raised for queries outside the technique's reach: ``e(phi) != 0``
    (by Corollary 5.4 no fragmentation exists, and by Section 6 such
    queries are #P-hard or conjectured hard)."""


@dataclass
class CompiledLineage:
    """The result of compiling ``Lin(Q_phi, D)``: the d-D circuit plus the
    fragmentation certificate it was built from.

    The circuit's evaluation tape (:mod:`repro.circuits.evaluator`) is
    cached on the object, so re-evaluation after probability updates — the
    paper's motivating reuse scenario — never re-walks the gate arena.

    ``compile_ms`` is the wall-clock cost of building the circuit and
    ``gates_saved`` the number of gate constructions served from the
    arena's hash-cons table (template gates and the ``¬v`` gates shared
    across side managers).  It *underestimates* total sharing: reuse
    inside the precompiled gate programs never requests a gate in the
    first place and shows up only in the gate counts themselves (compare
    the benchmark's seed vs. fast-path sizes).
    """

    query: HQuery
    circuit: Circuit
    fragmentation: Fragmentation
    is_nnf: bool
    compile_ms: float = 0.0
    gates_saved: int = 0

    @property
    def tape(self) -> EvaluationTape:
        """The memoized evaluation tape of the compiled circuit (shared
        with :func:`repro.circuits.probability.gate_probabilities` through
        :func:`repro.circuits.evaluator.tape_for`)."""
        return tape_for(self.circuit)

    def probability(self, tid: TupleIndependentDatabase) -> Fraction:
        """One linear bottom-up pass (the d-D payoff); exact."""
        return self.tape.evaluate(tid.probability_map())

    def probability_float(self, tid: TupleIndependentDatabase) -> float:
        """One pass on the compiled ``float`` backend."""
        return self.tape.evaluate_floats(tid.probability_map())

    def probability_batch(
        self,
        probs: Sequence[
            TupleIndependentDatabase | Mapping[Hashable, Fraction | float]
        ],
    ) -> list[float]:
        """``Pr(Q_phi)`` for a batch of probability maps in one vectorized
        sweep of the tape's float backend.

        Each batch member is a TID over the compiled instance or a bare
        probability map; tuples absent from a map default to probability 0.
        """
        maps = [
            p.probability_map()
            if isinstance(p, TupleIndependentDatabase)
            else p
            for p in probs
        ]
        return self.tape.evaluate_batch(maps)

    def size(self) -> int:
        """Gate count of the circuit."""
        return len(self.circuit)


def _pair_of(leaf: BooleanFunction) -> tuple[int, int] | None:
    """``(flip variable, pattern)`` when the leaf is a pair function (the
    Proposition 5.8 leaves): exactly two models differing in one bit."""
    models = list(leaf.satisfying_masks())
    if len(models) == 2 and (models[0] ^ models[1]).bit_count() == 1:
        return (models[0] ^ models[1]).bit_length() - 1, models[0]
    return None


def _leaf_circuit(
    leaf: BooleanFunction, k: int, db: Instance, circuit: Circuit
) -> int:
    """A d-D gate computing ``Lin(Q_leaf, D)`` for a degenerate leaf.

    Pair functions (the Proposition 5.8 leaves) go straight to one
    pair-query circuit; ``⊥`` (the base leaf) is the constant False; any
    other degenerate function falls back to the general Proposition-3.7
    construction, merged into the shared arena.
    """
    if leaf.is_bottom():
        return circuit.add_const(False)
    pair = _pair_of(leaf)
    if pair is not None:
        return pair_query_circuit(k, pair[0], pair[1], db, circuit)
    sub = degenerate_lineage_circuit(leaf, db)
    return copy_into(sub, circuit)


def _plug_template(
    fragmentation: Fragmentation, k: int, db: Instance
) -> Circuit:
    """Proposition 4.4: materialize ``T[C_0, ..., C_n]`` as one circuit.

    The arena hash-conses its gates, so leaves sharing pair-query
    structure (and the template's repeated ¬/∨ shapes) are built once;
    the pair leaves' OBDD families are prefetched in one sweep per side.
    """
    circuit = Circuit(dedup=True)
    prefetch_pair_queries(
        k,
        (
            pair
            for leaf in fragmentation.leaves
            if not leaf.is_bottom() and (pair := _pair_of(leaf)) is not None
        ),
        db,
    )
    leaf_gates = [
        _leaf_circuit(leaf, k, db, circuit)
        for leaf in fragmentation.leaves
    ]

    def build(node) -> int:
        if isinstance(node, Hole):
            return leaf_gates[node.index]
        if isinstance(node, NotNode):
            return circuit.add_not(build(node.child))
        assert isinstance(node, OrNode)
        return circuit.add_or([build(child) for child in node.children])

    circuit.set_output(build(fragmentation.template.root))
    return circuit


def compile_lineage(query: HQuery, db: Instance) -> CompiledLineage:
    """Theorem 5.2: compile ``Lin(Q_phi, D)`` into a d-D, for any ``phi``
    with ``e(phi) = 0``.

    Degenerate ``phi`` short-circuits to the Proposition-3.7 construction;
    otherwise the ⊥-derivation template drives the build.  When the colored
    subgraph of ``G_V[phi]`` happens to have a perfect matching, the
    negation-free template is preferred (Section 7), yielding a d-DNNF.

    :raises NotCompilableError: if ``e(phi) != 0``.
    """
    phi = query.phi
    euler = phi.euler_characteristic()
    if euler != 0:
        raise NotCompilableError(
            f"e(phi) = {euler} != 0: no fragmentation "
            "exists (Corollary 5.4); the query is #P-hard or conjectured so"
        )
    started = time.perf_counter()
    if phi.is_degenerate():
        fragmentation = fragment(phi)  # single-hole template
        circuit = degenerate_lineage_circuit(phi, db)
    else:
        matching = colored_matching(phi)
        if matching is not None:
            fragmentation = fragment_via_matching(phi, matching)
        else:
            fragmentation = fragment(phi)
        circuit = _plug_template(fragmentation, query.k, db)
    return CompiledLineage(
        query,
        circuit,
        fragmentation,
        circuit.is_nnf(),
        compile_ms=(time.perf_counter() - started) * 1e3,
        gates_saved=circuit.dedup_hits,
    )


def compile_lineage_ddnnf(query: HQuery, db: Instance) -> CompiledLineage:
    """Section 7: the d-DNNF-only compilation, available exactly when
    ``phi ∼−* ⊥`` — i.e. the colored subgraph of ``G_V[phi]`` has a perfect
    matching.  The resulting circuit contains ¬ only on variables.

    :raises NotCompilableError: if no colored perfect matching exists.
    """
    phi = query.phi
    matching = colored_matching(phi)
    if matching is None:
        raise NotCompilableError(
            "the colored subgraph of G_V[phi] has no perfect matching; "
            "phi is not ∼−*-reducible to ⊥"
        )
    started = time.perf_counter()
    fragmentation = fragment_via_matching(phi, matching)
    circuit = _plug_template(fragmentation, query.k, db)
    if not circuit.is_nnf():
        raise AssertionError("matching template produced a non-NNF circuit")
    return CompiledLineage(
        query,
        circuit,
        fragmentation,
        True,
        compile_ms=(time.perf_counter() - started) * 1e3,
        gates_saved=circuit.dedup_hits,
    )


def probability(query: HQuery, tid: TupleIndependentDatabase) -> Fraction:
    """``Pr(Q_phi)`` through the intensional pipeline: compile the lineage
    on ``tid``'s instance, then one bottom-up pass.

    :raises NotCompilableError: if ``e(phi) != 0``.
    """
    return compile_lineage(query, tid.instance).probability(tid)


def transfer_lineage(
    compiled: CompiledLineage, target: HQuery, db: Instance
) -> CompiledLineage:
    """Theorem 6.2(b), constructively: given a compiled d-D for ``Q_phi``
    and a target ``Q_phi'`` with ``e(phi') = e(phi)``, extend the circuit
    along a ≃-derivation ``phi ~> phi'``: each ``+`` step ∨-joins a fresh
    pair-query circuit, each ``-`` step wraps ``¬(¬ · ∨ pair)``.  The
    result is a d-D for ``Lin(Q_phi', D)`` of polynomially larger size.

    :raises ValueError: if the Euler characteristics differ.
    """
    source_phi = compiled.query.phi
    target_phi = target.phi
    if source_phi.euler_characteristic() != target_phi.euler_characteristic():
        raise ValueError("transfer requires equal Euler characteristics")
    started = time.perf_counter()
    steps = transform(source_phi, target_phi)
    circuit = Circuit(dedup=True)
    current = copy_into(compiled.circuit, circuit)
    for step in steps:
        # Pair-query OBDDs come from the instance's shared side managers
        # (a cache keyed by (k, l, mask, instance content)), so repeated
        # steps over the same pair reuse both the OBDD and — through the
        # arena's cons table — its gates.
        leaf_gate = pair_query_circuit(
            target.k, step.variable, step.valuation, db, circuit
        )
        if step.sign > 0:
            current = circuit.add_or([current, leaf_gate])
        else:
            current = circuit.add_not(
                circuit.add_or([circuit.add_not(current), leaf_gate])
            )
    circuit.set_output(current)
    return CompiledLineage(
        target,
        circuit,
        compiled.fragmentation,
        circuit.is_nnf(),
        compile_ms=(time.perf_counter() - started) * 1e3,
        gates_saved=circuit.dedup_hits,
    )

"""Brute-force probabilistic query evaluation (the validation oracle).

``PQE(Q)`` asks for ``Pr(Q, (D, pi)) = sum over worlds D' |= Q of Pr(D')``
(Section 2).  This module computes it by literally enumerating all
``2^|D|`` possible worlds — exponential, exact, and obviously correct,
which is precisely what the tests need to validate the two polynomial
engines.  A second entry point goes through the ground-truth lineage
(Definition B.2), exercising the ``Pr(Q, (D,pi)) = Pr(Lin(Q,D), pi)``
identity of [18].
"""

from __future__ import annotations

from fractions import Fraction

from repro.db.tid import TupleIndependentDatabase, valuation_probability
from repro.queries.hqueries import HQuery


def probability_by_world_enumeration(
    query: HQuery, tid: TupleIndependentDatabase
) -> Fraction:
    """``Pr(Q_phi)`` by summing the probabilities of satisfying worlds.

    Cost ``O(2^|D| * eval)``; refuses instances with more than 22 tuples.
    """
    if len(tid) > 22:
        raise ValueError(
            f"brute force refuses {len(tid)} tuples (> 22); "
            "use the extensional or intensional engine"
        )
    total = Fraction(0)
    for _, world_probability, world in tid.possible_worlds():
        if world_probability == 0:
            continue
        if query.holds_in(world):
            total += world_probability
    return total


def probability_by_lineage_enumeration(
    query: HQuery, tid: TupleIndependentDatabase
) -> Fraction:
    """``Pr(Lin(Q_phi, D), pi)``: tabulate the lineage, then sum valuation
    probabilities over its models (Definition B.2).  Numerically identical
    to :func:`probability_by_world_enumeration` — the [18] identity — but
    routed through the lineage machinery."""
    tuple_ids, lineage = query.lineage_truth_table(tid.instance)
    prob = {t: tid.probability_of(t) for t in tuple_ids}
    total = Fraction(0)
    for model in lineage.satisfying_sets():
        valuation = frozenset(tuple_ids[j] for j in model)
        total += valuation_probability(prob, valuation)
    return total


def pattern_distribution(
    query: HQuery, tid: TupleIndependentDatabase
) -> dict[int, Fraction]:
    """The exact distribution of the h-pattern (which ``h_{k,i}`` hold)
    across worlds — a richer oracle used by tests of the intensional
    engine's determinism argument (distinct patterns are disjoint events
    whose probabilities must sum to 1)."""
    if len(tid) > 22:
        raise ValueError("pattern distribution limited to 22 tuples")
    distribution: dict[int, Fraction] = {}
    for _, world_probability, world in tid.possible_worlds():
        if world_probability == 0:
            continue
        pattern = query.h_pattern(world)
        distribution[pattern] = (
            distribution.get(pattern, Fraction(0)) + world_probability
        )
    return distribution

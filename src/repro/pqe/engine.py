"""A unified evaluation facade with automatic engine selection.

Downstream users mostly want one call: "give me the probability of this
query, pick the right algorithm, and tell me what you did".  This module
wraps the three engines behind :func:`evaluate`:

* ``method="auto"`` consults the dichotomy classifier: *safe monotone*
  queries (H+, degenerate or zero-Euler) take the extensional fast path —
  lifted inference over columnar probability views, with no lineage and
  no d-D construction at all; the remaining zero-Euler queries (the
  non-monotone combinations only the paper's compiler handles) go to the
  intensional compiler; and anything else falls back to brute force only
  when the instance is small enough — otherwise the call *refuses*
  unless the caller supplies an
  :class:`~repro.pqe.approximate.AccuracyBudget`, because by
  Corollary 3.9 / Proposition 6.4 the query is (or is conjectured)
  #P-hard and silently running an exponential algorithm on a large
  database is a bug, not a feature.  With a budget the hard-and-large
  case routes to the vectorized budget-adaptive sampler instead
  (``engine="karp_luby"`` or ``"monte_carlo"``);
* explicit methods (``"extensional"``, ``"intensional"``,
  ``"brute_force"``, ``"sampling"``) dispatch directly, with the
  engines' own error behavior.

The returned :class:`EvaluationResult` records the probability, the engine
used, the Figure-1 classification, and (for the intensional route) the
compiled circuit for reuse.  Both fast paths sit behind per-engine
caches: compiled lineages in :class:`CompilationCache` (keyed by query
*and* instance fingerprint — circuits depend on the data) and extensional
plans in :class:`~repro.pqe.extensional.ExtensionalPlanCache` (keyed by
the query alone — plans never look at the data), with matching
``*_stats()`` counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass
from fractions import Fraction

from repro.core.deadline import Deadline
from repro.db.relation import Instance
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.approximate import (
    AccuracyBudget,
    Estimate,
    sampling_plan,
)
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.degenerate import (
    pair_cache_counters,
    reset_pair_cache_counters,
)
from repro.pqe.dichotomy import Classification, Region, classify, classify_query
from repro.pqe.extensional import (
    ExtensionalPlanCache,
    ExtensionalPlanCacheStats,
    clear_extensional_plan_cache,
    extensional_plan_stats,
    plan_for,
    probability_batch as extensional_probability_batch,
)
from repro.pqe.extensional import probability as extensional_probability
from repro.pqe.intensional import CompiledLineage, compile_lineage
from repro.pqe.lift import evaluate_plan, evaluate_plan_batch
from repro.queries.hqueries import HQuery

BRUTE_FORCE_LIMIT = 18  #: max tuples auto mode will hand to brute force

COMPILATION_CACHE_LIMIT = 64  #: max compiled lineages kept (LRU)


class HardQueryError(ValueError):
    """Raised by auto mode on a (provably or conjecturally) #P-hard query
    over an instance too large for the exponential fallback."""


@dataclass
class EvaluationResult:
    """The outcome of one :func:`evaluate` call.

    For intensional results ``compiled`` is shared engine-cache state:
    treat its circuit as read-only (use
    :func:`repro.circuits.operations.copy_into` to derive new circuits).
    """

    probability: Fraction
    engine: str
    classification: Classification
    compiled: CompiledLineage | None = None
    #: the engine's cached artifact was reused: a compiled lineage on the
    #: intensional route, an extensional plan on the extensional route
    cache_hit: bool = False
    #: wall-clock cost of the d-D compilation (0.0 on a cache hit, None
    #: for non-intensional engines); gate-sharing counters live on
    #: ``compiled`` (``compile_ms``/``gates_saved``).
    compile_ms: float | None = None
    #: the raw sampler output on the sampling route (``engine`` is then
    #: ``"karp_luby"`` or ``"monte_carlo"``): unclamped value, half-width,
    #: samples drawn, adaptive waves; ``None`` for exact engines.
    estimate: Estimate | None = None


@dataclass
class BatchEvaluationResult:
    """The outcome of one :func:`evaluate_batch` call: float-mode
    probabilities, one per input TID, in input order.

    ``compiled`` is the shared compiled lineage when every TID in the
    batch had the same instance; it is ``None`` for multi-instance
    batches (there is no single circuit to hand back) and for
    non-intensional fallbacks.
    """

    probabilities: list[float]
    engine: str
    classification: Classification
    compiled: CompiledLineage | None = None
    cache_hits: int = 0
    #: per-TID engine labels when the batch fell back to per-TID
    #: :func:`evaluate` calls and ``engine`` is an aggregate (``"mixed"``
    #: when the per-TID engines differ); ``None`` on the batched path.
    engines: list[str] | None = None


@dataclass
class CompilationCacheStats:
    """Counters of the engine's compiled-lineage cache, plus the
    pair-query sub-circuit cache of :mod:`repro.pqe.degenerate`
    (``pair_hits``/``pair_misses``: per-side OBDD roots served from a
    shared manager vs. built by a family sweep)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    pair_hits: int = 0
    pair_misses: int = 0


class CompilationCache:
    """A thread-safe LRU of compiled lineages keyed by ``(query, instance
    fingerprint)``.

    The module keeps one default instance behind the convenience API
    below; :mod:`repro.serving` gives every shard its own cache so that
    churn on one shard never evicts another shard's circuits and two
    shards never serve each other's compiled state.  Lookup and insertion
    are guarded by a per-cache lock; compilation itself runs outside the
    lock, so a slow compile never serializes unrelated evaluations (two
    racing callers may both compile the same key once; the first
    insertion wins and every holder shares its circuit).
    """

    def __init__(self, limit: int = COMPILATION_CACHE_LIMIT):
        if limit < 1:
            raise ValueError(f"cache limit must be positive, got {limit}")
        self.limit = limit
        self._entries: OrderedDict[tuple, CompiledLineage] = OrderedDict()
        self._stats = CompilationCacheStats()
        self._lock = threading.RLock()

    def get_or_compile(
        self,
        query: HQuery,
        instance: Instance,
        fingerprint: tuple | None = None,
    ) -> tuple[CompiledLineage, bool]:
        """The cached compiled lineage for ``(query, instance)``, compiling
        on a miss.  Returns ``(compiled, was_cache_hit)``.

        The returned :class:`CompiledLineage` is shared cache state, so
        its circuit is frozen on insertion: mutation attempts raise
        instead of silently corrupting other holders (grow a copy via
        :func:`repro.circuits.operations.copy_into` instead).
        """
        if fingerprint is None:
            fingerprint = instance.content_fingerprint()
        key = (query, fingerprint)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return cached, True
        # Compiling grows instance-shared derivations (the side OBDD
        # managers gain nodes while the lineage template is plugged), so
        # concurrent compiles over one instance serialize on the
        # *instance*, not just this cache: replicated serving keeps a
        # separate cache per replica shard over the same ``Instance``.
        # Distinct instances still compile fully in parallel.
        with instance.derivation_lock:
            compiled = compile_lineage(query, instance)
        compiled.circuit.freeze()
        with self._lock:
            racing = self._entries.get(key)
            if racing is not None:
                # Another thread compiled the same key first; keep one
                # circuit so every holder shares the same tape and arena.
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return racing, True
            self._stats.misses += 1
            self._entries[key] = compiled
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
        return compiled, False

    def stats(self) -> CompilationCacheStats:
        """A coherent snapshot of this cache's own counters (the
        pair-query counters of the module-level
        :func:`compilation_cache_stats` are process-wide and not
        per-cache)."""
        with self._lock:
            return CompilationCacheStats(
                self._stats.hits,
                self._stats.misses,
                self._stats.evictions,
            )

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._stats.hits = 0
            self._stats.misses = 0
            self._stats.evictions = 0

    def keys(self) -> tuple[tuple, ...]:
        """The cached ``(query, fingerprint)`` keys, LRU-oldest first."""
        with self._lock:
            return tuple(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_DEFAULT_CACHE = CompilationCache()


def compile_lineage_cached(
    query: HQuery,
    instance: Instance,
    fingerprint: tuple | None = None,
    cache: CompilationCache | None = None,
) -> tuple[CompiledLineage, bool]:
    """:func:`repro.pqe.intensional.compile_lineage` behind an LRU cache
    keyed by ``(query, instance fingerprint)``.

    The compiled d-D depends only on the query and the instance — not on
    tuple probabilities — so repeated evaluations over the same data (the
    paper's update/re-evaluate workloads) reuse one circuit and its tape.
    ``fingerprint`` lets callers that already hold the instance's
    :meth:`~repro.db.relation.Instance.content_fingerprint` (e.g. batch
    grouping) pass it through; ``cache`` selects a caller-owned
    :class:`CompilationCache` (per-shard state in :mod:`repro.serving`)
    instead of the process-wide default.  Returns
    ``(compiled, was_cache_hit)``.
    """
    return (cache if cache is not None else _DEFAULT_CACHE).get_or_compile(
        query, instance, fingerprint
    )


def compilation_cache_stats(
    cache: CompilationCache | None = None,
) -> CompilationCacheStats:
    """A snapshot of the cache counters (the default cache's unless a
    caller-owned one is passed), plus the process-wide pair-query
    counters."""
    pair_hits, pair_misses = pair_cache_counters()
    snapshot = (cache if cache is not None else _DEFAULT_CACHE).stats()
    snapshot.pair_hits = pair_hits
    snapshot.pair_misses = pair_misses
    return snapshot


def clear_compilation_cache(cache: CompilationCache | None = None) -> None:
    """Drop all cached compiled lineages and reset the counters (the
    default cache's unless a caller-owned one is passed).

    The pair-query counters of :mod:`repro.pqe.degenerate` are
    process-wide, so they are reset only with the default cache —
    clearing one shard's cache must not zero observability shared by
    every other shard.
    """
    if cache is not None:
        cache.clear()
        return
    _DEFAULT_CACHE.clear()
    reset_pair_cache_counters()


def evaluate(
    query: HQuery,
    tid: TupleIndependentDatabase,
    method: str = "auto",
    cache: CompilationCache | None = None,
    plan_cache: ExtensionalPlanCache | None = None,
    budget: AccuracyBudget | None = None,
    deadline: Deadline | None = None,
) -> EvaluationResult:
    """Evaluate ``Pr(Q_phi)`` with the selected (or automatic) engine.

    :param method: ``"auto"``, ``"extensional"``, ``"lifted"``,
        ``"intensional"``, ``"brute_force"`` or ``"sampling"``.
        ``query`` may be an :class:`~repro.queries.hqueries.HQuery` or
        any UCQ/CQ the lifted engine accepts
        (:class:`~repro.queries.ucq.UnionOfCQs`,
        :class:`~repro.queries.cq.ConjunctiveQuery`); non-h queries
        route lift → brute force → sampling in auto mode and report
        ``engine="lifted"`` on the lifted path.  ``"lifted"`` on an
        h-query is the extensional fast path (the h-kernels *are* lift
        IR ops).
    :param cache: a caller-owned :class:`CompilationCache` for the
        intensional route (defaults to the process-wide cache).
    :param plan_cache: a caller-owned
        :class:`~repro.pqe.extensional.ExtensionalPlanCache` for the
        extensional route (defaults to the process-wide cache).
    :param budget: an :class:`~repro.pqe.approximate.AccuracyBudget` for
        the sampling route.  In auto mode, passing a budget turns the
        hard-and-large refusal into a budget-adaptive randomized
        estimate (Karp–Luby for UCQs, Monte Carlo otherwise) — the
        serving layer's routing; without one, auto mode still refuses.
        With ``method="sampling"`` the sampler runs unconditionally
        (``None`` means the default budget).
    :param deadline: an optional :class:`~repro.core.deadline.Deadline`
        checked cooperatively — at entry, between compilation and the
        sweep, and between sampling waves — raising
        :class:`~repro.core.deadline.DeadlineExceeded` instead of
        finishing work nobody will read.  Checks never interrupt a
        sweep, so any answer that *is* produced is bit-identical to the
        deadline-free one.
    :raises HardQueryError: in auto mode, when the query is not zero-Euler,
        the instance exceeds :data:`BRUTE_FORCE_LIMIT` tuples and no
        ``budget`` was given.
    :raises ValueError: for an unknown method, or from the explicit
        engines' own validation.
    """
    if deadline is not None:
        deadline.check("evaluation admission")
    classification = classify_query(query)
    if method == "auto":
        return _auto(
            query, tid, classification, cache, plan_cache, budget, deadline
        )
    if method == "sampling":
        return _sampling(query, tid, classification, budget, deadline)
    if method in ("extensional", "lifted"):
        if isinstance(query, HQuery):
            return _extensional(query, tid, classification, plan_cache)
        return _lifted(query, tid, classification, plan_cache)
    if method == "intensional":
        if not isinstance(query, HQuery):
            raise ValueError(
                "the intensional compiler handles h-queries only; use "
                "method='lifted' (or 'auto') for general UCQs"
            )
        compiled, hit = compile_lineage_cached(query, tid.instance, cache=cache)
        if deadline is not None:
            deadline.check("post-compilation")
        return EvaluationResult(
            compiled.probability(tid),
            "intensional",
            classification,
            compiled,
            cache_hit=hit,
            compile_ms=0.0 if hit else compiled.compile_ms,
        )
    if method == "brute_force":
        return EvaluationResult(
            probability_by_world_enumeration(query, tid),
            "brute_force",
            classification,
        )
    raise ValueError(f"unknown method {method!r}")


def _extensional(
    query: HQuery,
    tid: TupleIndependentDatabase,
    classification: Classification,
    plan_cache: ExtensionalPlanCache | None = None,
) -> EvaluationResult:
    """The extensional route: lifted inference through the plan cache —
    no lineage, no circuit, no compilation."""
    plan, hit = plan_for(query, plan_cache)
    return EvaluationResult(
        extensional_probability(query, tid, plan=plan),
        "extensional",
        classification,
        cache_hit=hit,
    )


def _lifted(
    query,
    tid: TupleIndependentDatabase,
    classification: Classification,
    plan_cache: ExtensionalPlanCache | None = None,
) -> EvaluationResult:
    """The general lifted route (non-h UCQs/CQs): the Dalvi–Suciu plan
    through the same plan cache, evaluated by the IR backends — no
    lineage, no circuit, no compilation."""
    plan, hit = plan_for(query, plan_cache)
    return EvaluationResult(
        evaluate_plan(plan, tid),
        "lifted",
        classification,
        cache_hit=hit,
    )


def _sampling(
    query: HQuery,
    tid: TupleIndependentDatabase,
    classification: Classification,
    budget: AccuracyBudget | None = None,
    deadline: Deadline | None = None,
) -> EvaluationResult:
    """The randomized route: the vectorized budget-adaptive sampler of
    :mod:`repro.pqe.approximate`.  The served probability is the
    estimate clamped to ``[0, 1]`` (Karp–Luby's unbiased ``W * fraction``
    can land outside when the union-bound weight exceeds 1); the raw
    estimate rides along on ``EvaluationResult.estimate``."""
    plan = sampling_plan(query, tid)
    estimate = plan.run(budget, deadline=deadline)
    return EvaluationResult(
        Fraction(min(1.0, max(0.0, estimate.value))),
        plan.engine,
        classification,
        estimate=estimate,
    )


def _auto(
    query: HQuery,
    tid: TupleIndependentDatabase,
    classification: Classification,
    cache: CompilationCache | None = None,
    plan_cache: ExtensionalPlanCache | None = None,
    budget: AccuracyBudget | None = None,
    deadline: Deadline | None = None,
) -> EvaluationResult:
    if classification.extensional_safe:
        if isinstance(query, HQuery):
            return _extensional(query, tid, classification, plan_cache)
        return _lifted(query, tid, classification, plan_cache)
    if classification.h_query and classification.dd_ptime:
        compiled, hit = compile_lineage_cached(query, tid.instance, cache=cache)
        if deadline is not None:
            deadline.check("post-compilation")
        return EvaluationResult(
            compiled.probability(tid),
            "intensional",
            classification,
            compiled,
            cache_hit=hit,
            compile_ms=0.0 if hit else compiled.compile_ms,
        )
    if len(tid) <= BRUTE_FORCE_LIMIT:
        return EvaluationResult(
            probability_by_world_enumeration(query, tid),
            "brute_force",
            classification,
        )
    if budget is not None:
        return _sampling(query, tid, classification, budget, deadline)
    if classification.h_query:
        adjective = (
            "#P-hard" if classification.region is Region.HARD else
            "conjectured #P-hard"
        )
        diagnosis = f"query is {adjective} (e(phi) = {classification.euler})"
    else:
        diagnosis = (
            "the safe-plan search found no plan "
            "(#P-hard by the UCQ dichotomy)"
        )
    raise HardQueryError(
        f"{diagnosis} and the "
        f"instance has {len(tid)} > {BRUTE_FORCE_LIMIT} tuples; pass "
        f"budget= (or method='sampling') for a randomized estimate, or "
        f"method='brute_force' to force the exponential engine"
    )


def evaluate_batch(
    query: HQuery,
    tids: Iterable[TupleIndependentDatabase],
    method: str = "auto",
    cache: CompilationCache | None = None,
    plan_cache: ExtensionalPlanCache | None = None,
    budget: AccuracyBudget | None = None,
    deadline: Deadline | None = None,
) -> BatchEvaluationResult:
    """Evaluate ``Pr(Q_phi)`` over many TIDs in one float-mode sweep.

    The many-TID / updated-probability workload.  Safe monotone queries
    take the extensional path: one plan lookup for the whole batch
    (``plan_cache`` selects a caller-owned
    :class:`~repro.pqe.extensional.ExtensionalPlanCache`), then every
    TID's probability columns swept by the vectorized lifted backend —
    bit-for-float identical to per-TID :func:`evaluate` float results.
    Other d-D(PTIME) queries compile once per instance fingerprint —
    through the engine cache (``cache`` selects a caller-owned
    :class:`CompilationCache`) — and their probability maps run as a
    single batched pass of the compiled tape.

    ``method`` may be ``"auto"``, ``"extensional"``, ``"intensional"``
    or ``"sampling"``.  In auto mode a query outside d-D(PTIME) falls
    back to per-TID :func:`evaluate` (with its brute-force size limits;
    a ``budget`` turns the hard-and-large refusal into the vectorized
    sampling route, exactly as in :func:`evaluate`).  ``"sampling"``
    runs the budget-adaptive sampler on every TID — plans share their
    clause structure / indicator tape per instance content, so a batch
    over one instance builds the lineage once.  ``"intensional"``
    propagates the compiler's own
    :class:`~repro.pqe.intensional.NotCompilableError`, ``"extensional"``
    the lifted engine's
    :class:`~repro.pqe.extensional.UnsafeQueryError`.

    An empty ``tids`` returns an empty, well-defined result: no
    probabilities, no compiled circuit, and the engine label the
    non-empty batch would have carried (``"extensional"`` /
    ``"intensional"`` when the query routes to a batched path,
    ``"brute_force"`` for the auto-mode fallback) — never the method
    name.  ``cache_hits`` counts compilation-cache hits on the
    intensional path and plan-cache hits (0 or 1: one lookup serves the
    batch) on the extensional path.

    Probabilities are returned as floats (the batch backend); use
    :func:`evaluate` for exact single-TID results.  A ``deadline`` is
    checked cooperatively (at entry, between per-TID sweeps, and inside
    the sampler's wave loop) with the same semantics as
    :func:`evaluate`: the batch either finishes in full or raises
    :class:`~repro.core.deadline.DeadlineExceeded` — it never returns a
    partial result.
    """
    tid_list = list(tids)
    if deadline is not None:
        deadline.check("batch admission")
    classification = classify_query(query)
    if method not in ("auto", "intensional", "extensional", "lifted", "sampling"):
        raise ValueError(f"unknown batch method {method!r}")
    if method == "intensional" and not isinstance(query, HQuery):
        raise ValueError(
            "the intensional compiler handles h-queries only; use "
            "method='lifted' (or 'auto') for general UCQs"
        )
    if method == "sampling":
        if not tid_list:
            label = "karp_luby" if query.is_ucq() else "monte_carlo"
            return BatchEvaluationResult([], label, classification)
        probabilities = []
        label = ""
        for tid in tid_list:
            plan = sampling_plan(query, tid)
            label = plan.engine
            estimate = plan.run(budget, deadline=deadline)
            probabilities.append(min(1.0, max(0.0, estimate.value)))
        return BatchEvaluationResult(probabilities, label, classification)
    is_h = isinstance(query, HQuery)
    extensional_path = method in ("extensional", "lifted") or (
        method == "auto" and classification.extensional_safe
    )
    batched_path = not extensional_path and is_h and (
        classification.dd_ptime or method == "intensional"
    )
    if not tid_list:
        if extensional_path:
            label = "extensional" if is_h else "lifted"
        elif batched_path:
            label = "intensional"
        else:
            label = "brute_force"
        return BatchEvaluationResult(
            [],
            label,
            classification,
            engines=None if extensional_path or batched_path else [],
        )
    if extensional_path:
        plan, hit = plan_for(query, plan_cache)
        if is_h:
            return BatchEvaluationResult(
                extensional_probability_batch(query, tid_list, plan=plan),
                "extensional",
                classification,
                cache_hits=int(hit),
            )
        return BatchEvaluationResult(
            evaluate_plan_batch(plan, tid_list),
            "lifted",
            classification,
            cache_hits=int(hit),
        )
    if not batched_path:
        results = [
            evaluate(
                query, tid, method="auto", cache=cache, budget=budget,
                deadline=deadline,
            )
            for tid in tid_list
        ]
        engines = [r.engine for r in results]
        distinct = set(engines)
        # Per-TID fallbacks may pick different engines (instance-size
        # dependent); a single borrowed label would misreport the rest.
        label = distinct.pop() if len(distinct) == 1 else "mixed"
        return BatchEvaluationResult(
            [float(r.probability) for r in results],
            label,
            classification,
            engines=engines,
        )
    groups: OrderedDict[tuple, list[int]] = OrderedDict()
    for position, tid in enumerate(tid_list):
        groups.setdefault(
            tid.instance.content_fingerprint(), []
        ).append(position)
    probabilities = [0.0] * len(tid_list)
    compiled: CompiledLineage | None = None
    cache_hits = 0
    for fingerprint, positions in groups.items():
        if deadline is not None:
            deadline.check("batch compilation")
        compiled, hit = compile_lineage_cached(
            query, tid_list[positions[0]].instance, fingerprint, cache
        )
        cache_hits += int(hit)
        batch = compiled.probability_batch(
            [tid_list[i] for i in positions]
        )
        for position, value in zip(positions, batch):
            probabilities[position] = value
    if len(groups) != 1:
        compiled = None  # No single circuit covers a multi-instance batch.
    return BatchEvaluationResult(
        probabilities, "intensional", classification, compiled, cache_hits
    )

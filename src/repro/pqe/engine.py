"""A unified evaluation facade with automatic engine selection.

Downstream users mostly want one call: "give me the probability of this
query, pick the right algorithm, and tell me what you did".  This module
wraps the three engines behind :func:`evaluate`:

* ``method="auto"`` consults the dichotomy classifier: zero-Euler queries
  go to the intensional compiler (works for monotone and non-monotone
  ``phi`` alike), and anything else falls back to brute force only when
  the instance is small enough — otherwise the call *refuses*, because by
  Corollary 3.9 / Proposition 6.4 the query is (or is conjectured) #P-hard
  and silently running an exponential algorithm on a large database is a
  bug, not a feature;
* explicit methods (``"extensional"``, ``"intensional"``,
  ``"brute_force"``) dispatch directly, with the engines' own error
  behavior.

The returned :class:`EvaluationResult` records the probability, the engine
used, the Figure-1 classification, and (for the intensional route) the
compiled circuit for reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.db.tid import TupleIndependentDatabase
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.dichotomy import Classification, Region, classify
from repro.pqe.extensional import probability as extensional_probability
from repro.pqe.intensional import CompiledLineage, compile_lineage
from repro.queries.hqueries import HQuery

BRUTE_FORCE_LIMIT = 18  #: max tuples auto mode will hand to brute force


class HardQueryError(ValueError):
    """Raised by auto mode on a (provably or conjecturally) #P-hard query
    over an instance too large for the exponential fallback."""


@dataclass
class EvaluationResult:
    """The outcome of one :func:`evaluate` call."""

    probability: Fraction
    engine: str
    classification: Classification
    compiled: CompiledLineage | None = None


def evaluate(
    query: HQuery,
    tid: TupleIndependentDatabase,
    method: str = "auto",
) -> EvaluationResult:
    """Evaluate ``Pr(Q_phi)`` with the selected (or automatic) engine.

    :param method: ``"auto"``, ``"extensional"``, ``"intensional"`` or
        ``"brute_force"``.
    :raises HardQueryError: in auto mode, when the query is not zero-Euler
        and the instance exceeds :data:`BRUTE_FORCE_LIMIT` tuples.
    :raises ValueError: for an unknown method, or from the explicit
        engines' own validation.
    """
    classification = classify(query)
    if method == "auto":
        return _auto(query, tid, classification)
    if method == "extensional":
        return EvaluationResult(
            extensional_probability(query, tid), "extensional", classification
        )
    if method == "intensional":
        compiled = compile_lineage(query, tid.instance)
        return EvaluationResult(
            compiled.probability(tid), "intensional", classification, compiled
        )
    if method == "brute_force":
        return EvaluationResult(
            probability_by_world_enumeration(query, tid),
            "brute_force",
            classification,
        )
    raise ValueError(f"unknown method {method!r}")


def _auto(
    query: HQuery,
    tid: TupleIndependentDatabase,
    classification: Classification,
) -> EvaluationResult:
    if classification.dd_ptime:
        compiled = compile_lineage(query, tid.instance)
        return EvaluationResult(
            compiled.probability(tid), "intensional", classification, compiled
        )
    if len(tid) <= BRUTE_FORCE_LIMIT:
        return EvaluationResult(
            probability_by_world_enumeration(query, tid),
            "brute_force",
            classification,
        )
    adjective = (
        "#P-hard" if classification.region is Region.HARD else
        "conjectured #P-hard"
    )
    raise HardQueryError(
        f"query is {adjective} (e(phi) = {classification.euler}) and the "
        f"instance has {len(tid)} > {BRUTE_FORCE_LIMIT} tuples; pass "
        f"method='brute_force' explicitly to force the exponential engine"
    )

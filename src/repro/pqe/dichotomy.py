"""Classification of H-queries into the regions of Figure 1.

The paper's Figure 1 partitions H by the tractability/compilability facts
established across Sections 3–6:

* ``DEGENERATE`` — ``phi`` degenerate: ``Q_phi ∈ OBDD(PTIME)``
  (Proposition 3.7; these are the inversion-free H-queries, the blue
  rectangle);
* ``ZERO_EULER`` — nondegenerate with ``e(phi) = 0``: fragmentable, hence
  ``Q_phi ∈ d-D(PTIME)`` (Theorem 5.2, dashed green); for monotone ``phi``
  these are exactly the safe H+-queries (Corollary 3.9);
* ``HARD`` — ``e(phi) != 0`` within the monotone-achievable range:
  ``PQE(Q_phi)`` is #P-hard (Corollary 3.9 for monotone ``phi``,
  Proposition 6.4 beyond; dashed red);
* ``CONJECTURED_HARD`` — ``e(phi) != 0`` outside the monotone range
  (e.g. ``phi_maxEuler``): conjectured #P-hard (Open problem 1, dotted
  gray).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.boolean_function import BooleanFunction
from repro.core.euler import monotone_euler_extremes
from repro.queries.hqueries import HQuery


class Region(enum.Enum):
    """The four regions of Figure 1 (degenerate ⊂ zero-Euler is drawn as a
    separate, stronger region because it admits OBDDs, not just d-Ds)."""

    DEGENERATE = "degenerate (OBDD PTIME)"
    ZERO_EULER = "zero Euler (d-D PTIME)"
    HARD = "#P-hard (Cor 3.9 / Prop 6.4)"
    CONJECTURED_HARD = "conjectured #P-hard (Open problem 1)"


@dataclass(frozen=True)
class Classification:
    """Everything Figure 1 says about one query.

    ``h_query`` marks classifications produced from an :class:`HQuery`'s
    Boolean function; :func:`classify_query` also classifies arbitrary
    UCQs/CQs through the safe-plan search, with ``h_query=False`` and the
    Euler/degeneracy fields inapplicable (zeroed).  ``lifted_safe``
    records whether the general lifted engine (:mod:`repro.pqe.lift`)
    admits the query — for h-queries this coincides with the
    Figure 1 criterion (a property test pins the agreement)."""

    region: Region
    euler: int
    is_ucq: bool
    is_degenerate: bool
    obdd_ptime: bool
    dd_ptime: bool
    known_hard: bool
    h_query: bool = True
    lifted_safe: bool = False

    @property
    def safe(self) -> bool:
        """For UCQs: the [12] dichotomy verdict (PTIME side)."""
        return self.dd_ptime

    @property
    def extensional_safe(self) -> bool:
        """Whether the query has an extensional (lifted) plan.  For
        h-queries: monotone ``phi`` that is degenerate or zero-Euler —
        exactly the safe H+-queries of Proposition 3.5 / Corollary 3.9.
        For general UCQs: whatever the Dalvi–Suciu safe-plan search
        decides (``lifted_safe``).  These evaluate with no lineage and no
        d-D (:mod:`repro.pqe.extensional` / :mod:`repro.pqe.lift`); the
        auto engine and the serving layer route them there."""
        if not self.h_query:
            return self.lifted_safe
        return self.is_ucq and (self.is_degenerate or self.euler == 0)


def classify_function(phi: BooleanFunction) -> Classification:
    """Classify the H-query ``Q_phi`` by its Boolean function."""
    k = phi.nvars - 1
    euler = phi.euler_characteristic()
    degenerate = phi.is_degenerate()
    if degenerate:
        region = Region.DEGENERATE
    elif euler == 0:
        region = Region.ZERO_EULER
    else:
        low, high = monotone_euler_extremes(k)
        region = (
            Region.HARD if low <= euler <= high else Region.CONJECTURED_HARD
        )
    monotone = phi.is_monotone()
    return Classification(
        region=region,
        euler=euler,
        is_ucq=monotone,
        is_degenerate=degenerate,
        obdd_ptime=degenerate,
        dd_ptime=euler == 0,
        known_hard=region is Region.HARD,
        h_query=True,
        # For h-queries the safe-plan search agrees with the Figure 1
        # criterion (pinned by a property test), so no search is run here
        # — region_counts sweeps whole truth-table ranges through this.
        lifted_safe=monotone and (degenerate or euler == 0),
    )


def classify(query: HQuery) -> Classification:
    """Classify an :class:`HQuery` (delegates to the function)."""
    return classify_function(query.phi)


def classify_query(query) -> Classification:
    """Classify any supported query: :class:`HQuery` via Figure 1,
    arbitrary UCQs/CQs via the Dalvi–Suciu safe-plan search of
    :mod:`repro.pqe.lift` (complete for the UCQ fragment up to the
    search's resource caps, which reject conservatively — a capped
    rejection is reported as hard).  The Euler/degeneracy fields are
    h-query notions and are zeroed for general UCQs."""
    if isinstance(query, HQuery):
        return classify(query)
    from repro.pqe.lift import is_liftable

    liftable = is_liftable(query)
    return Classification(
        region=Region.ZERO_EULER if liftable else Region.HARD,
        euler=0,
        is_ucq=True,
        is_degenerate=False,
        obdd_ptime=False,
        dd_ptime=liftable,
        known_hard=not liftable,
        h_query=False,
        lifted_safe=liftable,
    )


def region_counts(functions) -> dict[Region, int]:
    """Tally regions over an iterable of Boolean functions — the numeric
    reproduction of Figure 1 (bench E1)."""
    counts = {region: 0 for region in Region}
    for phi in functions:
        counts[classify_function(phi).region] += 1
    return counts

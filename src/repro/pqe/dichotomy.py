"""Classification of H-queries into the regions of Figure 1.

The paper's Figure 1 partitions H by the tractability/compilability facts
established across Sections 3–6:

* ``DEGENERATE`` — ``phi`` degenerate: ``Q_phi ∈ OBDD(PTIME)``
  (Proposition 3.7; these are the inversion-free H-queries, the blue
  rectangle);
* ``ZERO_EULER`` — nondegenerate with ``e(phi) = 0``: fragmentable, hence
  ``Q_phi ∈ d-D(PTIME)`` (Theorem 5.2, dashed green); for monotone ``phi``
  these are exactly the safe H+-queries (Corollary 3.9);
* ``HARD`` — ``e(phi) != 0`` within the monotone-achievable range:
  ``PQE(Q_phi)`` is #P-hard (Corollary 3.9 for monotone ``phi``,
  Proposition 6.4 beyond; dashed red);
* ``CONJECTURED_HARD`` — ``e(phi) != 0`` outside the monotone range
  (e.g. ``phi_maxEuler``): conjectured #P-hard (Open problem 1, dotted
  gray).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.boolean_function import BooleanFunction
from repro.core.euler import monotone_euler_extremes
from repro.queries.hqueries import HQuery


class Region(enum.Enum):
    """The four regions of Figure 1 (degenerate ⊂ zero-Euler is drawn as a
    separate, stronger region because it admits OBDDs, not just d-Ds)."""

    DEGENERATE = "degenerate (OBDD PTIME)"
    ZERO_EULER = "zero Euler (d-D PTIME)"
    HARD = "#P-hard (Cor 3.9 / Prop 6.4)"
    CONJECTURED_HARD = "conjectured #P-hard (Open problem 1)"


@dataclass(frozen=True)
class Classification:
    """Everything Figure 1 says about one query."""

    region: Region
    euler: int
    is_ucq: bool
    is_degenerate: bool
    obdd_ptime: bool
    dd_ptime: bool
    known_hard: bool

    @property
    def safe(self) -> bool:
        """For UCQs: the [12] dichotomy verdict (PTIME side)."""
        return self.dd_ptime

    @property
    def extensional_safe(self) -> bool:
        """Whether the query has an extensional (lifted) plan: monotone
        ``phi`` that is degenerate or zero-Euler — exactly the safe
        H+-queries of Proposition 3.5 / Corollary 3.9.  These evaluate
        with no lineage and no d-D (:mod:`repro.pqe.extensional`); the
        auto engine and the serving layer route them there."""
        return self.is_ucq and (self.is_degenerate or self.euler == 0)


def classify_function(phi: BooleanFunction) -> Classification:
    """Classify the H-query ``Q_phi`` by its Boolean function."""
    k = phi.nvars - 1
    euler = phi.euler_characteristic()
    degenerate = phi.is_degenerate()
    if degenerate:
        region = Region.DEGENERATE
    elif euler == 0:
        region = Region.ZERO_EULER
    else:
        low, high = monotone_euler_extremes(k)
        region = (
            Region.HARD if low <= euler <= high else Region.CONJECTURED_HARD
        )
    return Classification(
        region=region,
        euler=euler,
        is_ucq=phi.is_monotone(),
        is_degenerate=degenerate,
        obdd_ptime=degenerate,
        dd_ptime=euler == 0,
        known_hard=region is Region.HARD,
    )


def classify(query: HQuery) -> Classification:
    """Classify an :class:`HQuery` (delegates to the function)."""
    return classify_function(query.phi)


def region_counts(functions) -> dict[Region, int]:
    """Tally regions over an iterable of Boolean functions — the numeric
    reproduction of Figure 1 (bench E1)."""
    counts = {region: 0 for region in Region}
    for phi in functions:
        counts[classify_function(phi).region] += 1
    return counts

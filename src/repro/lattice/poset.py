"""Finite posets and their Möbius functions.

The extensional (lifted-inference) side of the paper revolves around the
Möbius function of the CNF lattice of a monotone Boolean function
(Definition 3.4 and Proposition 3.5).  This module provides a small, generic
finite-poset toolkit: ordering checks, Hasse diagram (covering relation),
top/bottom elements, the Möbius function computed by its defining top-down
recurrence, and the Möbius inversion formula (Proposition B.1) used in the
proof of Lemma 3.8.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Mapping
from typing import TypeVar

Element = TypeVar("Element", bound=Hashable)


class FinitePoset:
    """A finite poset given by its elements and a ``leq`` comparison.

    The comparison is tabulated once at construction; all subsequent queries
    are dictionary lookups.  The poset is validated to be reflexive,
    antisymmetric and transitive.
    """

    def __init__(
        self,
        elements: Iterable[Element],
        leq: Callable[[Element, Element], bool],
    ):
        self._elements: list[Element] = list(dict.fromkeys(elements))
        self._leq: dict[tuple[Element, Element], bool] = {}
        for a in self._elements:
            for b in self._elements:
                self._leq[(a, b)] = bool(leq(a, b))
        self._validate()

    def _validate(self) -> None:
        for a in self._elements:
            if not self._leq[(a, a)]:
                raise ValueError(f"poset order is not reflexive at {a!r}")
        for a in self._elements:
            for b in self._elements:
                if a != b and self._leq[(a, b)] and self._leq[(b, a)]:
                    raise ValueError(
                        f"poset order is not antisymmetric on {a!r}, {b!r}"
                    )
        for a in self._elements:
            for b in self._elements:
                if not self._leq[(a, b)]:
                    continue
                for c in self._elements:
                    if self._leq[(b, c)] and not self._leq[(a, c)]:
                        raise ValueError(
                            "poset order is not transitive on "
                            f"{a!r} <= {b!r} <= {c!r}"
                        )

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def elements(self) -> list[Element]:
        """The elements, in insertion order."""
        return list(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element: Element) -> bool:
        return (element, element) in self._leq

    def leq(self, a: Element, b: Element) -> bool:
        """Whether ``a <= b`` in the poset order."""
        return self._leq[(a, b)]

    def lt(self, a: Element, b: Element) -> bool:
        """Strict order ``a < b``."""
        return a != b and self._leq[(a, b)]

    def down_set(self, element: Element) -> list[Element]:
        """All elements ``u`` with ``u <= element``."""
        return [u for u in self._elements if self._leq[(u, element)]]

    def up_set(self, element: Element) -> list[Element]:
        """All elements ``u`` with ``element <= u``."""
        return [u for u in self._elements if self._leq[(element, u)]]

    def minimum(self) -> Element:
        """The least element ``0̂``.

        :raises ValueError: if the poset has no least element.
        """
        for candidate in self._elements:
            if all(self._leq[(candidate, other)] for other in self._elements):
                return candidate
        raise ValueError("poset has no least element")

    def maximum(self) -> Element:
        """The greatest element ``1̂``.

        :raises ValueError: if the poset has no greatest element.
        """
        for candidate in self._elements:
            if all(self._leq[(other, candidate)] for other in self._elements):
                return candidate
        raise ValueError("poset has no greatest element")

    def covers(self, a: Element, b: Element) -> bool:
        """Whether ``b`` covers ``a``: ``a < b`` with nothing strictly
        between them (an edge of the Hasse diagram)."""
        if not self.lt(a, b):
            return False
        return not any(
            self.lt(a, c) and self.lt(c, b) for c in self._elements
        )

    def hasse_edges(self) -> list[tuple[Element, Element]]:
        """All covering pairs ``(lower, upper)`` of the Hasse diagram."""
        return [
            (a, b)
            for a in self._elements
            for b in self._elements
            if self.covers(a, b)
        ]

    def is_lattice(self) -> bool:
        """Whether every pair of elements has a join and a meet."""
        for a in self._elements:
            for b in self._elements:
                uppers = [
                    c
                    for c in self._elements
                    if self._leq[(a, c)] and self._leq[(b, c)]
                ]
                if not _has_least(self, uppers):
                    return False
                lowers = [
                    c
                    for c in self._elements
                    if self._leq[(c, a)] and self._leq[(c, b)]
                ]
                if not _has_greatest(self, lowers):
                    return False
        return True

    # ------------------------------------------------------------------
    # Möbius function
    # ------------------------------------------------------------------

    def mobius(self, a: Element, b: Element) -> int:
        """The Möbius function ``mu(a, b)`` of the poset.

        Defined (as in Section 2 of the paper) by ``mu(u, u) = 1`` and, for
        ``u < v``, ``mu(u, v) = - sum_{u < w <= v} mu(w, v)``.

        :raises ValueError: if ``a <= b`` does not hold.
        """
        if not self._leq[(a, b)]:
            raise ValueError(f"mobius({a!r}, {b!r}) requires {a!r} <= {b!r}")
        return self._mobius_to(b)[a]

    def _mobius_to(self, top: Element) -> dict[Element, int]:
        """All values ``mu(u, top)`` for ``u <= top``, computed top-down."""
        below = self.down_set(top)
        # Process in decreasing order so every w with u < w <= top is done
        # before u itself.
        order = sorted(
            below, key=lambda e: len([u for u in below if self._leq[(e, u)]])
        )
        values: dict[Element, int] = {}
        for element in order:
            if element == top:
                values[element] = 1
                continue
            values[element] = -sum(
                values[w]
                for w in below
                if self.lt(element, w) and self._leq[(w, top)]
            )
        return values

    def mobius_column(self, top: Element) -> dict[Element, int]:
        """Mapping ``u -> mu(u, top)`` for all ``u <= top`` (the green values
        of Figure 2 when ``top = 1̂``)."""
        return dict(self._mobius_to(top))

    def mobius_inversion_check(
        self, f: Mapping[Element, float], g: Mapping[Element, float]
    ) -> bool:
        """Verify the Möbius inversion formula (Proposition B.1) on data:
        ``g(x) = sum_{u <= x} f(u)`` for all x implies (and is implied by)
        ``f(x) = sum_{u <= x} mu(u, x) g(u)`` for all x.  Returns whether the
        first identity holds iff the second does on the given data."""
        first = all(
            abs(g[x] - sum(f[u] for u in self.down_set(x))) < 1e-9
            for x in self._elements
        )
        second = all(
            abs(
                f[x]
                - sum(
                    self.mobius(u, x) * g[u] for u in self.down_set(x)
                )
            )
            < 1e-9
            for x in self._elements
        )
        return first == second


def _has_least(poset: FinitePoset, subset: list) -> bool:
    return any(all(poset.leq(c, d) for d in subset) for c in subset)


def _has_greatest(poset: FinitePoset, subset: list) -> bool:
    return any(all(poset.leq(d, c) for d in subset) for c in subset)


def subset_lattice(ground: Iterable[int]) -> FinitePoset:
    """The Boolean lattice of all subsets of ``ground``, ordered by
    inclusion.  Its Möbius function is ``mu(A, B) = (-1)^{|B| - |A|}``; tests
    use this as a known oracle."""
    ground_set = frozenset(ground)
    elements = []
    items = sorted(ground_set)
    for mask in range(1 << len(items)):
        elements.append(
            frozenset(items[i] for i in range(len(items)) if mask >> i & 1)
        )
    return FinitePoset(elements, lambda a, b: a <= b)


def divisor_lattice(n: int) -> FinitePoset:
    """The divisors of ``n`` ordered by divisibility.  Its Möbius function
    restricted to ``(1, n)`` is the classical number-theoretic ``mu(n)``;
    tests use this as a second known oracle."""
    if n <= 0:
        raise ValueError("n must be positive")
    divisors = [d for d in range(1, n + 1) if n % d == 0]
    return FinitePoset(divisors, lambda a, b: b % a == 0)

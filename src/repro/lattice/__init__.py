"""Finite posets, Möbius functions and the CNF/DNF lattices of monotone
Boolean functions (Definition 3.4 / Lemma 3.8)."""

from repro.lattice.cnf_lattice import (
    ClauseLattice,
    cnf_lattice,
    dnf_lattice,
    mobius_cnf_value,
    mobius_dnf_value,
    verify_lemma_38,
)
from repro.lattice.polynomials import (
    Polynomial,
    cnf_polynomial,
    dnf_polynomial,
    interpolated_polynomial,
    lagrange_interpolation,
    probability_polynomial,
    verify_lemma_b5,
)
from repro.lattice.poset import FinitePoset, divisor_lattice, subset_lattice

__all__ = [
    "ClauseLattice",
    "FinitePoset",
    "Polynomial",
    "cnf_lattice",
    "cnf_polynomial",
    "divisor_lattice",
    "dnf_lattice",
    "dnf_polynomial",
    "interpolated_polynomial",
    "lagrange_interpolation",
    "mobius_cnf_value",
    "mobius_dnf_value",
    "probability_polynomial",
    "subset_lattice",
    "verify_lemma_38",
    "verify_lemma_b5",
]

"""The characteristic polynomials of Appendix B.2 (Lemma B.5).

For a nondegenerate monotone Boolean function ``phi`` on ``V = {0..k}``,
the appendix studies the univariate polynomial ``P^phi(t) = Pr(phi, pi_t)``
— the probability of ``phi`` when every variable independently holds with
probability ``t`` — and gives two further expressions for it:

* from the CNF lattice:  ``P_CNF(t) = sum over lattice elements d_s of
  mu_CNF(d_s, 1̂) * (1 - t)^{|d_s|}``;
* from the DNF lattice:  ``P_DNF(t) = 1 - sum of
  mu_DNF(d_s, 1̂) * t^{|d_s|}``.

Lemma B.5 states the three polynomials are equal; comparing their leading
coefficients yields Lemma 3.8 (``e(phi) = mu_CNF(0̂,1̂) =
(-1)^k mu_DNF(0̂,1̂)``).  This module computes all three with exact rational
coefficients, plus an interpolation-based fourth route (evaluate the PQE
semantics at ``deg + 1`` points and Lagrange-interpolate) used by tests and
the E17 bench as an independent cross-check.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.boolean_function import BooleanFunction
from repro.lattice.cnf_lattice import cnf_lattice, dnf_lattice


class Polynomial:
    """A univariate polynomial with exact Fraction coefficients.

    Coefficients are stored low-degree first; trailing zeros are trimmed so
    that equality is structural.
    """

    def __init__(self, coefficients: list[Fraction | int]):
        coeffs = [Fraction(c) for c in coefficients]
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        self.coefficients = coeffs

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls([])

    @classmethod
    def constant(cls, value: Fraction | int) -> "Polynomial":
        return cls([Fraction(value)])

    @classmethod
    def monomial(cls, degree: int, coefficient: Fraction | int = 1) -> "Polynomial":
        return cls([0] * degree + [Fraction(coefficient)])

    @property
    def degree(self) -> int:
        """Degree, with the zero polynomial at -1."""
        return len(self.coefficients) - 1

    def coefficient(self, degree: int) -> Fraction:
        """The coefficient of ``t^degree`` (0 beyond the stored degree)."""
        if 0 <= degree < len(self.coefficients):
            return self.coefficients[degree]
        return Fraction(0)

    def __add__(self, other: "Polynomial") -> "Polynomial":
        size = max(len(self.coefficients), len(other.coefficients))
        return Polynomial(
            [
                self.coefficient(i) + other.coefficient(i)
                for i in range(size)
            ]
        )

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        size = max(len(self.coefficients), len(other.coefficients))
        return Polynomial(
            [
                self.coefficient(i) - other.coefficient(i)
                for i in range(size)
            ]
        )

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        if not self.coefficients or not other.coefficients:
            return Polynomial.zero()
        result = [Fraction(0)] * (len(self.coefficients) + len(other.coefficients) - 1)
        for i, a in enumerate(self.coefficients):
            for j, b in enumerate(other.coefficients):
                result[i + j] += a * b
        return Polynomial(result)

    def scale(self, factor: Fraction | int) -> "Polynomial":
        return Polynomial([Fraction(factor) * c for c in self.coefficients])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.coefficients == other.coefficients

    def __hash__(self) -> int:
        return hash(tuple(self.coefficients))

    def __call__(self, t: Fraction | int | float):
        value = 0
        for coefficient in reversed(self.coefficients):
            value = value * t + coefficient
        return value

    def __repr__(self) -> str:
        if not self.coefficients:
            return "Polynomial(0)"
        terms = [
            f"{c}*t^{i}" if i else f"{c}"
            for i, c in enumerate(self.coefficients)
            if c != 0
        ]
        return "Polynomial(" + " + ".join(terms) + ")"


def _one_minus_t_power(exponent: int) -> Polynomial:
    result = Polynomial.constant(1)
    factor = Polynomial([1, -1])  # 1 - t
    for _ in range(exponent):
        result = result * factor
    return result


def probability_polynomial(phi: BooleanFunction) -> Polynomial:
    """``P^phi(t) = Pr(phi, pi_t)``: sum over models ``nu`` of
    ``t^{|nu|} (1-t)^{n - |nu|}`` (Definition B.4, first expression).
    Defined for *any* Boolean function."""
    n = phi.nvars
    result = Polynomial.zero()
    by_size: dict[int, int] = {}
    for model in phi.satisfying_masks():
        size = model.bit_count()
        by_size[size] = by_size.get(size, 0) + 1
    for size, count in sorted(by_size.items()):
        term = Polynomial.monomial(size, count) * _one_minus_t_power(n - size)
        result = result + term
    return result


def cnf_polynomial(phi: BooleanFunction) -> Polynomial:
    """``P^phi_CNF(t)`` (Definition B.4, second expression), from the CNF
    lattice's Möbius column.

    :raises ValueError: if ``phi`` is not monotone or is constant.
    """
    lattice = cnf_lattice(phi)
    column = lattice.mobius_column()
    result = Polynomial.zero()
    for element, mobius_value in column.items():
        if mobius_value == 0:
            continue
        term = _one_minus_t_power(len(element)).scale(mobius_value)
        result = result + term
    return result


def dnf_polynomial(phi: BooleanFunction) -> Polynomial:
    """``P^phi_DNF(t) = 1 - sum mu_DNF(d_s, 1̂) t^{|d_s|}`` (Definition
    B.4, third expression).

    :raises ValueError: if ``phi`` is not monotone or is constant.
    """
    lattice = dnf_lattice(phi)
    column = lattice.mobius_column()
    result = Polynomial.constant(1)
    for element, mobius_value in column.items():
        if mobius_value == 0:
            continue
        result = result - Polynomial.monomial(len(element), mobius_value)
    return result


def interpolated_polynomial(phi: BooleanFunction) -> Polynomial:
    """``P^phi`` recovered by Lagrange interpolation from ``n + 1`` exact
    evaluations of the PQE semantics at ``t = 0, 1/n', 2/n', ...`` — the
    polynomial-interpolation trick underlying many #P-hardness proofs in
    probabilistic databases, run here in the easy direction."""
    n = phi.nvars
    points = [Fraction(i, n + 1) for i in range(n + 1)]
    base = probability_polynomial(phi)  # evaluation oracle
    values = [base(t) for t in points]
    return lagrange_interpolation(list(zip(points, values)))


def lagrange_interpolation(
    samples: list[tuple[Fraction, Fraction]]
) -> Polynomial:
    """Exact Lagrange interpolation through distinct rational points."""
    result = Polynomial.zero()
    for i, (x_i, y_i) in enumerate(samples):
        numerator = Polynomial.constant(1)
        denominator = Fraction(1)
        for j, (x_j, _) in enumerate(samples):
            if i == j:
                continue
            numerator = numerator * Polynomial([-x_j, 1])
            denominator *= x_i - x_j
        result = result + numerator.scale(y_i / denominator)
    return result


def verify_lemma_b5(phi: BooleanFunction) -> bool:
    """Lemma B.5: ``P^phi = P^phi_CNF = P^phi_DNF`` as polynomials, for a
    nondegenerate monotone ``phi``.

    :raises ValueError: if ``phi`` is not monotone or not nondegenerate.
    """
    if not phi.is_monotone():
        raise ValueError("Lemma B.5 concerns monotone functions")
    if phi.is_degenerate():
        raise ValueError("Lemma B.5 concerns nondegenerate functions")
    base = probability_polynomial(phi)
    return base == cnf_polynomial(phi) == dnf_polynomial(phi)


def leading_coefficients(phi: BooleanFunction) -> tuple[Fraction, Fraction, Fraction]:
    """The three ``t^{k+1}`` coefficients whose equality proves Lemma 3.8:
    ``(-1)^{k+1} e(phi)`` from ``P^phi``, ``(-1)^{k+1} mu_CNF(0̂,1̂)`` from
    ``P_CNF`` and ``-mu_DNF(0̂,1̂)`` from ``P_DNF`` — returned in the raw
    polynomial form (the caller applies the signs, as the proof does)."""
    degree = phi.nvars
    return (
        probability_polynomial(phi).coefficient(degree),
        cnf_polynomial(phi).coefficient(degree),
        dnf_polynomial(phi).coefficient(degree),
    )

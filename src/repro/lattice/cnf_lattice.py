"""CNF and DNF lattices of monotone Boolean functions (Definition 3.4).

Given a monotone ``phi`` with minimized CNF ``C_0 ∧ ... ∧ C_n`` (each clause
seen as the set of variables it contains), the CNF lattice ``L^phi_CNF`` has
elements ``d_s = union of C_i for i in s`` over all ``s ⊆ {0..n}``, ordered
by *reversed* set inclusion.  Its greatest element ``1̂`` is the empty union
``∅`` and its least element ``0̂`` is ``DEP(phi)``.  The dichotomy of Dalvi
and Suciu (Proposition 3.5) decides the safety of the H+-query ``Q_phi`` by
whether ``mu_CNF(0̂, 1̂) = 0``; Lemma 3.8 shows this value equals the Euler
characteristic ``e(phi)``.

The DNF lattice is defined identically starting from the minimized DNF
(footnote 4); Lemma 3.8 relates the two via ``(-1)^k``.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations

from repro.core.boolean_function import BooleanFunction
from repro.lattice.poset import FinitePoset


class ClauseLattice:
    """The lattice of clause-unions of a monotone Boolean function.

    Parametrized by the clause list so that the same machinery serves both
    the CNF lattice (``phi.minimized_cnf()``) and the DNF lattice
    (``phi.minimized_dnf()``).
    """

    def __init__(self, clauses: list[frozenset[int]]):
        if not clauses:
            raise ValueError(
                "clause lattice of a constant function is not defined "
                "(the paper only builds it for nondegenerate functions)"
            )
        self._clauses = list(clauses)
        elements: set[frozenset[int]] = set()
        indices = range(len(clauses))
        for size in range(len(clauses) + 1):
            for subset in combinations(indices, size):
                union: frozenset[int] = frozenset()
                for i in subset:
                    union |= clauses[i]
                elements.add(union)
        # Reversed set inclusion: d <= d' iff d ⊇ d'.
        self._poset = FinitePoset(sorted(elements, key=_sort_key), _reverse_leq)

    @property
    def clauses(self) -> list[frozenset[int]]:
        """The generating clauses (the minimized CNF or DNF of ``phi``)."""
        return list(self._clauses)

    @property
    def poset(self) -> FinitePoset:
        """The underlying finite poset (reversed inclusion order)."""
        return self._poset

    @property
    def top(self) -> frozenset[int]:
        """``1̂ = ∅`` (the union of no clauses)."""
        return frozenset()

    @property
    def bottom(self) -> frozenset[int]:
        """``0̂`` (the union of all clauses, i.e. ``DEP(phi)``)."""
        result: frozenset[int] = frozenset()
        for clause in self._clauses:
            result |= clause
        return result

    def elements(self) -> list[frozenset[int]]:
        """All lattice elements ``d_s``."""
        return self._poset.elements

    def mobius_bottom_top(self) -> int:
        """``mu(0̂, 1̂)``: the value driving the Dalvi–Suciu dichotomy."""
        return self._poset.mobius(self.bottom, self.top)

    def mobius_column(self) -> dict[frozenset[int], int]:
        """All values ``mu(d, 1̂)`` (the annotations of Figure 2)."""
        return self._poset.mobius_column(self.top)

    def hasse_edges(self) -> list[tuple[frozenset[int], frozenset[int]]]:
        """Covering pairs of the Hasse diagram, lower element first."""
        return self._poset.hasse_edges()


def _reverse_leq(a: frozenset, b: frozenset) -> bool:
    return b <= a


def _sort_key(element: frozenset[int]) -> tuple[int, tuple[int, ...]]:
    return (len(element), tuple(sorted(element)))


@lru_cache(maxsize=256)
def cnf_lattice(phi: BooleanFunction) -> ClauseLattice:
    """``L^phi_CNF`` of Definition 3.4.

    Memoized per ``phi`` (LRU): the lattice is derived state of an
    immutable function, and the extensional engine consults it on every
    plan build.  The returned lattice is shared — treat it as read-only.

    :raises ValueError: if ``phi`` is not monotone or is constant.
    """
    return ClauseLattice(phi.minimized_cnf())


@lru_cache(maxsize=256)
def dnf_lattice(phi: BooleanFunction) -> ClauseLattice:
    """``L^phi_DNF`` (footnote 4): same construction from the minimized DNF.

    Memoized per ``phi`` like :func:`cnf_lattice`; shared, read-only.

    :raises ValueError: if ``phi`` is not monotone or is constant.
    """
    return ClauseLattice(phi.minimized_dnf())


def mobius_cnf_value(phi: BooleanFunction) -> int:
    """``mu_CNF(0̂, 1̂)`` for a monotone nondegenerate ``phi``.

    This is the quantity Proposition 3.5 tests against zero.  For degenerate
    monotone functions the paper does not use the lattice (they are always
    safe); callers should check degeneracy first.
    """
    return cnf_lattice(phi).mobius_bottom_top()


def mobius_dnf_value(phi: BooleanFunction) -> int:
    """``mu_DNF(0̂, 1̂)`` for a monotone nondegenerate ``phi``."""
    return dnf_lattice(phi).mobius_bottom_top()


def verify_lemma_38(phi: BooleanFunction) -> bool:
    """Check Lemma 3.8 on one function: for nondegenerate monotone ``phi`` on
    ``V = {0..k}``, ``e(phi) = mu_CNF(0̂,1̂) = (-1)^k mu_DNF(0̂,1̂)``.

    :raises ValueError: if ``phi`` is not monotone or not nondegenerate.
    """
    if not phi.is_monotone():
        raise ValueError("Lemma 3.8 concerns monotone functions")
    if phi.is_degenerate():
        raise ValueError("Lemma 3.8 concerns nondegenerate functions")
    k = phi.nvars - 1
    euler = phi.euler_characteristic()
    mu_cnf = mobius_cnf_value(phi)
    mu_dnf = mobius_dnf_value(phi)
    sign = -1 if k & 1 else 1
    return euler == mu_cnf == sign * mu_dnf

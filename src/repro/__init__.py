"""repro — a reproduction of Monet (PODS 2020), "Solving a Special Case of
the Intensional vs Extensional Conjecture in Probabilistic Databases".

The package implements the full stack the paper builds on:

* tuple-independent databases and the H-query family (``repro.db``,
  ``repro.queries``);
* the extensional (lifted inference / Möbius inversion) engine and the
  intensional (knowledge compilation into d-D circuits) engine, plus a
  brute-force oracle (``repro.pqe``);
* the combinatorial core: Boolean functions, Euler characteristics, the ±
  transformation, fragmentability, canonical forms (``repro.core``);
* the substrates: posets/Möbius functions, Boolean circuits, OBDDs,
  hypercube matchings, function enumeration (``repro.lattice``,
  ``repro.circuits``, ``repro.obdd``, ``repro.matching``,
  ``repro.enumeration``).

Quick start::

    from fractions import Fraction
    from repro import HQuery, phi_9, complete_tid
    from repro.pqe import (
        extensional_probability, intensional_probability,
        probability_by_world_enumeration,
    )

    query = HQuery(3, phi_9())          # Dalvi–Suciu's safe query q_9
    tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
    assert (extensional_probability(query, tid)
            == intensional_probability(query, tid)
            == probability_by_world_enumeration(query, tid))
"""

from repro.core.boolean_function import BooleanFunction
from repro.core.fragmentation import Fragmentation, fragment, is_fragmentable
from repro.core.transformation import Step, reduce_to_bottom, transform
from repro.db.generator import complete_tid, path_tid, random_tid
from repro.db.relation import Instance, TupleId
from repro.db.tid import TupleIndependentDatabase
from repro.queries.hqueries import HQuery, h_query, phi_9, q9

__version__ = "1.0.0"

__all__ = [
    "BooleanFunction",
    "Fragmentation",
    "HQuery",
    "Instance",
    "Step",
    "TupleId",
    "TupleIndependentDatabase",
    "__version__",
    "complete_tid",
    "fragment",
    "h_query",
    "is_fragmentable",
    "path_tid",
    "phi_9",
    "q9",
    "random_tid",
    "reduce_to_bottom",
    "transform",
]

"""Perfect matchings of induced hypercube subgraphs (Section 7).

The paper reformulates ``phi ∼−* ⊥`` as: the subgraph of ``G_V[phi]``
induced by the colored nodes has a perfect matching (and dually
``phi ∼+* ⊤`` for the uncolored nodes).  Because the hypercube is bipartite
(by valuation-size parity), maximum matchings are computed exactly with
Hopcroft–Karp — our offline substitute for the Glucose SAT solver used by
[26] for the experiment cited under Conjecture 1.
"""

from __future__ import annotations

import networkx as nx

from repro.core import valuations as _val
from repro.core.boolean_function import BooleanFunction
from repro.matching.graph import ColoredGraph


def maximum_matching_of_induced(
    graph: nx.Graph,
) -> dict[int, int]:
    """A maximum matching of an induced hypercube subgraph, as a symmetric
    node->node dict.  Uses Hopcroft–Karp on the parity bipartition; isolated
    nodes and empty graphs are handled explicitly."""
    if graph.number_of_nodes() == 0:
        return {}
    even_side = {n for n in graph.nodes if _val.parity(n) == 1}
    matching = nx.bipartite.hopcroft_karp_matching(graph, top_nodes=even_side)
    # hopcroft_karp returns entries for matched nodes from both sides.
    return dict(matching)


def has_perfect_matching(graph: nx.Graph) -> bool:
    """Whether an induced hypercube subgraph has a perfect matching."""
    if graph.number_of_nodes() % 2 == 1:
        return False
    matching = maximum_matching_of_induced(graph)
    return len(matching) == graph.number_of_nodes()


def colored_matching(phi: BooleanFunction) -> list[tuple[int, int]] | None:
    """A perfect matching of the colored subgraph of ``G_V[phi]`` as a list
    of adjacent valuation pairs, or None if there is none.

    A returned matching certifies ``phi ∼−* ⊥`` and feeds
    :func:`repro.core.fragmentation.fragment_via_matching` (the d-DNNF
    special case of Section 7).
    """
    subgraph = ColoredGraph(phi).colored_subgraph()
    if not has_perfect_matching(subgraph):
        return None
    matching = maximum_matching_of_induced(subgraph)
    pairs = []
    for left, right in matching.items():
        if left < right:
            pairs.append((left, right))
    return pairs


def uncolored_matching(phi: BooleanFunction) -> list[tuple[int, int]] | None:
    """A perfect matching of the *uncolored* subgraph, certifying
    ``phi ∼+* ⊤`` (then ``¬Q_phi ∈ d-DNNF(PTIME)``, Section 7), or None."""
    subgraph = ColoredGraph(phi).uncolored_subgraph()
    if not has_perfect_matching(subgraph):
        return None
    matching = maximum_matching_of_induced(subgraph)
    pairs = []
    for left, right in matching.items():
        if left < right:
            pairs.append((left, right))
    return pairs


def steps_from_matching(
    phi: BooleanFunction, pairs: list[tuple[int, int]]
) -> list:
    """Turn a colored perfect matching into an explicit ``∼−*`` derivation
    ``phi ~> ⊥`` (each pair is one removal step)."""
    from repro.core.transformation import Step, apply_steps

    steps = []
    for first, second in pairs:
        variable = (first ^ second).bit_length() - 1
        steps.append(Step(-1, first, variable))
    final = apply_steps(phi, steps)
    if not final.is_bottom():
        raise ValueError("pairs do not tile SAT(phi)")
    return steps

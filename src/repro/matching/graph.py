"""The hypercube graph ``G_V`` and colored graphs ``G_V[phi]``.

Definition 5.6: ``G_V`` has node set ``2^V`` with an edge between any two
valuations differing in exactly one variable, and ``G_V[phi]`` colors the
satisfying valuations of ``phi``.  Figures 3, 5 and 7 of the paper are
colored graphs of this kind.  Nodes are valuation masks; networkx carries
the graph structure so the matching machinery can reuse standard
algorithms.
"""

from __future__ import annotations

import networkx as nx

from repro.core import valuations as _val
from repro.core.boolean_function import BooleanFunction


def hypercube_graph(nvars: int) -> nx.Graph:
    """``G_V`` for ``V = {0..nvars-1}``: nodes are valuation masks."""
    graph = nx.Graph()
    graph.add_nodes_from(range(1 << nvars))
    for mask in range(1 << nvars):
        for var in range(nvars):
            neighbor = mask ^ (1 << var)
            if neighbor > mask:
                graph.add_edge(mask, neighbor)
    return graph


class ColoredGraph:
    """``G_V[phi]``: the hypercube with the models of ``phi`` colored."""

    def __init__(self, phi: BooleanFunction):
        self.phi = phi
        self.graph = hypercube_graph(phi.nvars)
        self.colored = frozenset(phi.satisfying_masks())

    @property
    def uncolored(self) -> frozenset[int]:
        """The non-satisfying valuations."""
        return frozenset(
            m for m in range(1 << self.phi.nvars) if m not in self.colored
        )

    def colored_subgraph(self) -> nx.Graph:
        """The subgraph induced by the colored (satisfying) valuations."""
        return self.graph.subgraph(self.colored).copy()

    def uncolored_subgraph(self) -> nx.Graph:
        """The subgraph induced by the uncolored valuations."""
        return self.graph.subgraph(self.uncolored).copy()

    def isolated_colored_nodes(self) -> list[int]:
        """Colored nodes with no colored neighbor (like ``{3,4}`` in the
        paper's Figure 5)."""
        sub = self.colored_subgraph()
        return sorted(n for n in sub.nodes if sub.degree(n) == 0)

    def isolated_uncolored_nodes(self) -> list[int]:
        """Uncolored nodes with no uncolored neighbor (like ``{0,3,4}`` in
        Figure 5)."""
        sub = self.uncolored_subgraph()
        return sorted(n for n in sub.nodes if sub.degree(n) == 0)

    def euler_characteristic(self) -> int:
        """``e(phi)`` — the coloring invariant preserved by the ±moves."""
        return self.phi.euler_characteristic()

    def levels(self) -> list[list[int]]:
        """Nodes grouped by valuation size (the rows of Figures 3/5/7)."""
        by_size: list[list[int]] = [[] for _ in range(self.phi.nvars + 1)]
        for mask in range(1 << self.phi.nvars):
            by_size[_val.popcount(mask)].append(mask)
        return by_size

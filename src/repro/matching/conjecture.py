"""Conjecture 1 of the paper and its computational verification.

Conjecture 1: for *monotone* ``phi`` with ``e(phi) = 0``, the subgraph of
``G_V[phi]`` induced by the colored nodes, or the one induced by the
non-colored nodes, has a perfect matching.  The paper reports verifying it
(with the Glucose SAT solver) for all monotone functions with ``k <= 5``;
our offline substitute checks perfect matchings exactly with Hopcroft–Karp
over the enumerated monotone functions (see
:mod:`repro.enumeration.monotone`) — exhaustively for small ``k``, sampled
for larger ones.

The module also packages the paper's two accompanying observations:
``phi_noPM`` shows the conjecture fails without monotonicity (Figure 5),
and ``phi_oneneg`` shows the "or" is necessary (Figure 7); the searched
witnesses live in :mod:`repro.core.zoo`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.boolean_function import BooleanFunction
from repro.matching.graph import ColoredGraph
from repro.matching.perfect_matching import has_perfect_matching


@dataclass(frozen=True)
class ConjectureVerdict:
    """The matching facts for one function."""

    euler: int
    colored_has_pm: bool
    uncolored_has_pm: bool

    @property
    def satisfies_conjecture(self) -> bool:
        """The disjunction Conjecture 1 asserts (only meaningful when the
        function is monotone with zero Euler characteristic)."""
        return self.colored_has_pm or self.uncolored_has_pm


def check_function(phi: BooleanFunction) -> ConjectureVerdict:
    """Compute both perfect-matching facts for one function."""
    colored_graph = ColoredGraph(phi)
    return ConjectureVerdict(
        euler=phi.euler_characteristic(),
        colored_has_pm=has_perfect_matching(colored_graph.colored_subgraph()),
        uncolored_has_pm=has_perfect_matching(
            colored_graph.uncolored_subgraph()
        ),
    )


@dataclass
class ConjectureReport:
    """Aggregate of a verification sweep."""

    checked: int = 0
    zero_euler: int = 0
    colored_pm: int = 0
    uncolored_pm: int = 0
    both_pm: int = 0
    counterexamples: list[BooleanFunction] | None = None

    def __post_init__(self) -> None:
        if self.counterexamples is None:
            self.counterexamples = []

    @property
    def holds(self) -> bool:
        """Whether no counterexample was found."""
        return not self.counterexamples


def verify_over(
    functions, limit_counterexamples: int = 5
) -> ConjectureReport:
    """Check Conjecture 1 over an iterable of *monotone* functions.

    Functions with non-zero Euler characteristic are counted but skipped
    (the conjecture does not speak about them).
    """
    report = ConjectureReport()
    for phi in functions:
        report.checked += 1
        if phi.euler_characteristic() != 0:
            continue
        report.zero_euler += 1
        verdict = check_function(phi)
        if verdict.colored_has_pm:
            report.colored_pm += 1
        if verdict.uncolored_has_pm:
            report.uncolored_pm += 1
        if verdict.colored_has_pm and verdict.uncolored_has_pm:
            report.both_pm += 1
        if not verdict.satisfies_conjecture:
            if len(report.counterexamples) < limit_counterexamples:
                report.counterexamples.append(phi)
    return report


def verify_exhaustive(k: int) -> ConjectureReport:
    """Exhaustive check over all monotone functions on ``V = {0..k}``
    (Dedekind-ideal enumeration; practical for ``k <= 4``)."""
    from repro.enumeration.monotone import enumerate_monotone_functions

    return verify_over(enumerate_monotone_functions(k + 1))


def verify_sampled(k: int, samples: int, seed: int = 0) -> ConjectureReport:
    """Randomized check for larger ``k``: sample random monotone functions
    (up-closures of random generator sets)."""
    rng = random.Random(seed)
    functions = (
        BooleanFunction.random_monotone(k + 1, rng) for _ in range(samples)
    )
    return verify_over(
        (phi for phi in functions), limit_counterexamples=5
    ) if samples else ConjectureReport()

"""Hypercube graphs, perfect matchings and Conjecture 1 (Section 7)."""

from repro.matching.conjecture import (
    ConjectureReport,
    ConjectureVerdict,
    check_function,
    verify_exhaustive,
    verify_over,
    verify_sampled,
)
from repro.matching.graph import ColoredGraph, hypercube_graph
from repro.matching.perfect_matching import (
    colored_matching,
    has_perfect_matching,
    maximum_matching_of_induced,
    steps_from_matching,
    uncolored_matching,
)

__all__ = [
    "ColoredGraph",
    "ConjectureReport",
    "ConjectureVerdict",
    "check_function",
    "colored_matching",
    "has_perfect_matching",
    "hypercube_graph",
    "maximum_matching_of_induced",
    "steps_from_matching",
    "uncolored_matching",
    "verify_exhaustive",
    "verify_over",
    "verify_sampled",
]

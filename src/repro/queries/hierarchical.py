"""Hierarchical self-join-free conjunctive queries.

The paper's introduction situates the H-queries against the classical
small-query landscape: UCQs whose lineages admit polynomial read-once
formulas are exactly the hierarchical-read-once UCQs [24, 28], and for
self-join-free Boolean CQs the safe/#P-hard frontier of [12] coincides
with being *hierarchical*: for every two query variables ``x, y``, the atom
sets ``at(x)`` and ``at(y)`` are nested or disjoint.

This module implements that baseline fragment end to end, because the
H-queries' building blocks live inside it (each ``h_{k,i}`` is hierarchical
and self-join-free) and because it exhibits the read-once extreme of the
knowledge-compilation spectrum the paper maps:

* :func:`is_hierarchical` — the syntactic dichotomy test;
* :func:`safe_plan_probability` — the lifted plan: independent project on a
  root variable, independent join across connected components, ground out
  constants (exact Fractions, polynomial data complexity);
* :func:`read_once_lineage` — the same recursion producing the lineage as
  a read-once circuit (every tuple variable appears exactly once), whose
  probability therefore also falls out of one bottom-up pass with no
  determinism side conditions at all.
"""

from __future__ import annotations

from collections.abc import Hashable
from fractions import Fraction

from repro.circuits.circuit import Circuit
from repro.db.relation import TupleId
from repro.db.tid import TupleIndependentDatabase
from repro.queries.cq import Atom, ConjunctiveQuery, Constant


class NotHierarchicalError(ValueError):
    """Raised when a safe-plan is requested for a non-hierarchical query
    (the #P-hard side of the self-join-free CQ dichotomy)."""


class NotSelfJoinFreeError(ValueError):
    """Raised when a query repeats a relation name (the dichotomy and the
    plan below assume self-join-freeness)."""


def _check_self_join_free(query: ConjunctiveQuery) -> None:
    names = [atom.relation for atom in query.atoms]
    if len(names) != len(set(names)):
        raise NotSelfJoinFreeError(
            f"query repeats a relation: {sorted(names)}"
        )


def atom_sets(query: ConjunctiveQuery) -> dict[str, frozenset[int]]:
    """``at(x)``: for each variable, the indices of the atoms containing
    it."""
    result: dict[str, set[int]] = {}
    for index, atom in enumerate(query.atoms):
        for variable in atom.variables():
            result.setdefault(variable, set()).add(index)
    return {v: frozenset(s) for v, s in result.items()}


def is_hierarchical(query: ConjunctiveQuery) -> bool:
    """Whether every two variables have nested-or-disjoint atom sets."""
    sets = list(atom_sets(query).values())
    for i, first in enumerate(sets):
        for second in sets[i + 1 :]:
            if first & second and not (first <= second or second <= first):
                return False
    return True


def _root_variables(query: ConjunctiveQuery) -> list[str]:
    """Variables appearing in *every* atom of the query (the candidates
    for an independent project)."""
    sets = atom_sets(query)
    total = len(query.atoms)
    return sorted(v for v, s in sets.items() if len(s) == total)


def _connected_components(query: ConjunctiveQuery) -> list[ConjunctiveQuery]:
    """Partition the atoms by shared variables."""
    parent = list(range(len(query.atoms)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    sets = atom_sets(query)
    for indices in sets.values():
        indices = sorted(indices)
        for other in indices[1:]:
            parent[find(indices[0])] = find(other)
    groups: dict[int, list[Atom]] = {}
    for i, atom in enumerate(query.atoms):
        groups.setdefault(find(i), []).append(atom)
    return [ConjunctiveQuery(tuple(atoms)) for atoms in groups.values()]


def _substitute(query: ConjunctiveQuery, variable: str, value: Hashable):
    atoms = tuple(
        Atom(
            atom.relation,
            tuple(
                Constant(value) if term == variable else term
                for term in atom.terms
            ),
        )
        for atom in query.atoms
    )
    return ConjunctiveQuery(atoms)


def _ground_tuple_probability(
    atom: Atom, tid: TupleIndependentDatabase
) -> Fraction:
    values = tuple(term.value for term in atom.terms)  # all constants
    if not tid.instance.has(atom.relation, values):
        return Fraction(0)
    return tid.probability_of(TupleId(atom.relation, values))


def safe_plan_probability(
    query: ConjunctiveQuery, tid: TupleIndependentDatabase
) -> Fraction:
    """Exact ``Pr(query)`` for a hierarchical self-join-free Boolean CQ.

    Recursion (the classical lifted plan):

    * no variables left → the query is a conjunction of ground atoms over
      distinct relations: multiply their tuple probabilities;
    * several connected components → they share no variables *and* (by
      self-join-freeness) no relations: multiply their probabilities;
    * otherwise a root variable ``x`` exists (hierarchical + connected
      guarantees it): the events for distinct values of ``x`` are
      independent, so ``Pr = 1 - prod over domain values a of
      (1 - Pr(query[x := a]))``.

    :raises NotHierarchicalError: on a non-hierarchical query.
    :raises NotSelfJoinFreeError: on a self-join.
    """
    _check_self_join_free(query)
    if not is_hierarchical(query):
        raise NotHierarchicalError(
            "non-hierarchical self-join-free CQs are #P-hard [12]"
        )
    return _plan(query, tid)


def _plan(query: ConjunctiveQuery, tid: TupleIndependentDatabase) -> Fraction:
    if not query.variables():
        probability = Fraction(1)
        for atom in query.atoms:
            probability *= _ground_tuple_probability(atom, tid)
        return probability
    components = _connected_components(query)
    if len(components) > 1:
        probability = Fraction(1)
        for component in components:
            probability *= _plan(component, tid)
        return probability
    roots = _root_variables(query)
    if not roots:
        raise NotHierarchicalError(
            "connected query with no root variable: not hierarchical"
        )
    root = roots[0]
    domain = _domain_of(query, root, tid)
    miss_all = Fraction(1)
    for value in domain:
        miss_all *= 1 - _plan(_substitute(query, root, value), tid)
    return 1 - miss_all


def _domain_of(
    query: ConjunctiveQuery, variable: str, tid: TupleIndependentDatabase
) -> list[Hashable]:
    """Values the variable can take in any atom containing it."""
    values: set[Hashable] = set()
    for atom in query.atoms:
        if variable not in atom.variables():
            continue
        try:
            relation = tid.instance.relation(atom.relation)
        except KeyError:
            continue
        positions = [
            i for i, term in enumerate(atom.terms) if term == variable
        ]
        for row in relation:
            values.update(row[i] for i in positions)
    return sorted(values, key=repr)


def read_once_lineage(
    query: ConjunctiveQuery, tid: TupleIndependentDatabase
) -> Circuit:
    """The lineage of a hierarchical self-join-free CQ as a *read-once*
    circuit: the same recursion as :func:`safe_plan_probability`, emitting
    gates instead of numbers.  Every tuple variable feeds exactly one wire,
    so the circuit is trivially decomposable and its ∨-gates are
    independent-or gates; probability can be computed with the inclusion–
    exclusion-free rule ``1 - prod(1 - p_i)`` — we emit that shape with
    ¬/∧/¬ so the standard d-D pass is exact too.

    :raises NotHierarchicalError: / :raises NotSelfJoinFreeError: as above.
    """
    _check_self_join_free(query)
    if not is_hierarchical(query):
        raise NotHierarchicalError(
            "non-hierarchical self-join-free CQs have no read-once lineage "
            "in general"
        )
    circuit = Circuit()
    circuit.set_output(_lineage(query, tid, circuit))
    return circuit


def _lineage(
    query: ConjunctiveQuery, tid: TupleIndependentDatabase, circuit: Circuit
) -> int:
    if not query.variables():
        gates = []
        for atom in query.atoms:
            values = tuple(term.value for term in atom.terms)
            if not tid.instance.has(atom.relation, values):
                return circuit.add_const(False)
            gates.append(circuit.add_var(TupleId(atom.relation, values)))
        return circuit.add_and(gates)
    components = _connected_components(query)
    if len(components) > 1:
        return circuit.add_and(
            [_lineage(component, tid, circuit) for component in components]
        )
    root = _root_variables(query)[0]
    domain = _domain_of(query, root, tid)
    # Independent-or as ¬(∧ ¬child): keeps ∨-gates deterministic-free and
    # the circuit read-once; the ∧ is decomposable because distinct root
    # values touch disjoint tuples.
    negated_children = [
        circuit.add_not(_lineage(_substitute(query, root, value), tid, circuit))
        for value in domain
    ]
    return circuit.add_not(circuit.add_and(negated_children))


def is_read_once_circuit(circuit: Circuit) -> bool:
    """Whether every variable gate feeds exactly one wire — the read-once
    property of the produced lineages."""
    from repro.circuits.circuit import GateKind

    fanout: dict[int, int] = {}
    for _, gate in circuit.gates():
        for input_id in gate.inputs:
            fanout[input_id] = fanout.get(input_id, 0) + 1
    for gate_id, gate in circuit.gates():
        if gate.kind is GateKind.VAR and fanout.get(gate_id, 0) > 1:
            return False
    return True

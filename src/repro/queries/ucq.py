"""Unions of conjunctive queries, and the UCQ view of monotone H-queries.

Definition 3.2 observes that the queries in H+ are equivalent to UCQs:
for monotone ``phi``, write ``phi`` in minimized DNF and turn each clause
``{i_1, ..., i_m}`` into the conjunctive query ``h_{k,i_1} ∧ ... ∧
h_{k,i_m}`` (with variables renamed apart, so the conjunction of Boolean
CQs is again one Boolean CQ); ``Q_phi`` is the union of these.  This module
makes that equivalence executable: an explicit :class:`UnionOfCQs` class
with set semantics, the :func:`hquery_to_ucq` translation, and the
monotone-DNF lineage it induces — used by tests to cross-check the
truth-functional evaluation of :class:`repro.queries.hqueries.HQuery`
against honest first-order semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.db.relation import Instance
from repro.queries.cq import Atom, ConjunctiveQuery
from repro.queries.hqueries import HQuery, h_query


@dataclass(frozen=True)
class UnionOfCQs:
    """A Boolean UCQ: a disjunction of Boolean conjunctive queries."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    def holds_in(self, db: Instance) -> bool:
        """``D |= Q`` iff some disjunct matches."""
        return any(cq.holds_in(db) for cq in self.disjuncts)

    def is_ucq(self) -> bool:
        """Always ``True`` — the duck-typed shape test engines share with
        :meth:`repro.queries.hqueries.HQuery.is_ucq` (UCQs are monotone
        by construction)."""
        return True

    def relations(self) -> frozenset[str]:
        """All relation names across the disjuncts."""
        result: frozenset[str] = frozenset()
        for cq in self.disjuncts:
            result |= cq.relations()
        return result

    def grounding_sets(self, db: Instance) -> set[frozenset]:
        """The clauses of the monotone DNF lineage: one fact-set per match
        of any disjunct."""
        witnesses: set[frozenset] = set()
        for cq in self.disjuncts:
            witnesses |= cq.grounding_sets(db)
        return witnesses

    def lineage_circuit(self, db: Instance) -> Circuit:
        """The PTIME monotone-DNF lineage circuit (the representation the
        paper's Section 6 calls "computed in PTIME as a DNF")."""
        circuit = Circuit()
        clauses = [
            circuit.add_and(
                [circuit.add_var(t) for t in sorted(witness)]
            )
            for witness in sorted(self.grounding_sets(db), key=repr)
        ]
        circuit.set_output(circuit.add_or(clauses))
        return circuit

    def __str__(self) -> str:
        return " ∨ ".join(f"({cq})" for cq in self.disjuncts)


def _rename_apart(cq: ConjunctiveQuery, suffix: str) -> ConjunctiveQuery:
    """Rename the query variables with a fresh suffix so that conjoined
    CQs do not accidentally share variables."""
    atoms = tuple(
        Atom(
            atom.relation,
            tuple(
                term if not isinstance(term, str) else f"{term}_{suffix}"
                for term in atom.terms
            ),
        )
        for atom in cq.atoms
    )
    return ConjunctiveQuery(atoms)


def conjoin_cqs(queries: list[ConjunctiveQuery]) -> ConjunctiveQuery:
    """The conjunction of Boolean CQs as one Boolean CQ (variables renamed
    apart; the existential closure of the union of atom sets)."""
    atoms: list[Atom] = []
    for index, cq in enumerate(queries):
        atoms.extend(_rename_apart(cq, str(index)).atoms)
    return ConjunctiveQuery(tuple(atoms))


def hquery_to_ucq(query: HQuery) -> UnionOfCQs:
    """The explicit UCQ equivalent to a monotone H-query.

    :raises ValueError: if ``phi`` is not monotone (then ``Q_phi`` is a
        Boolean combination of CQs, not a UCQ).
    """
    if not query.is_ucq():
        raise ValueError("only monotone H-queries are UCQs")
    disjuncts = []
    for clause in sorted(
        query.phi.minimized_dnf(), key=lambda c: (len(c), sorted(c))
    ):
        components = [h_query(query.k, i) for i in sorted(clause)]
        if components:
            disjuncts.append(conjoin_cqs(components))
        else:
            # The empty clause (phi = ⊤): a tautological query; represent
            # it as the empty conjunction, which holds in every instance.
            disjuncts.append(ConjunctiveQuery(()))
    return UnionOfCQs(tuple(disjuncts))

"""Boolean conjunctive queries and their evaluation.

A Boolean CQ is an existentially quantified conjunction of relational atoms
(Section 1/3 of the paper).  Terms are either variables (strings) or
constants (wrapped in :class:`Constant`).  Evaluation enumerates homomorphic
matches by backtracking over atoms — fine for the tiny, fixed queries of the
paper (the ``h_{k,i}`` each have two atoms).

The module also produces *grounding sets*: for a CQ ``Q`` and instance
``D``, the set of matches, each a set of facts, whose disjunction of
conjunctions is the (monotone, DNF) lineage of ``Q`` on ``D``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass

from repro.db.relation import Instance, TupleId


@dataclass(frozen=True)
class Constant:
    """A constant term appearing directly inside a query atom."""

    value: Hashable


@dataclass(frozen=True)
class Atom:
    """One relational atom ``Rel(t1, ..., tn)``; terms are variable names
    (plain strings) or :class:`Constant` values."""

    relation: str
    terms: tuple[str | Constant, ...]

    def variables(self) -> frozenset[str]:
        """The query variables appearing in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, str))

    def __str__(self) -> str:
        rendered = ",".join(
            str(t.value) if isinstance(t, Constant) else t for t in self.terms
        )
        return f"{self.relation}({rendered})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A Boolean CQ: the existential closure of a conjunction of atoms."""

    atoms: tuple[Atom, ...]

    def variables(self) -> frozenset[str]:
        """All query variables."""
        result: frozenset[str] = frozenset()
        for atom in self.atoms:
            result |= atom.variables()
        return result

    def relations(self) -> frozenset[str]:
        """All relation names mentioned by the query."""
        return frozenset(atom.relation for atom in self.atoms)

    def is_ucq(self) -> bool:
        """Always ``True`` — a CQ is a one-disjunct UCQ; the duck-typed
        shape test engines share with
        :meth:`repro.queries.hqueries.HQuery.is_ucq`."""
        return True

    def __str__(self) -> str:
        body = " ∧ ".join(map(str, self.atoms))
        quantified = "".join(f"∃{v} " for v in sorted(self.variables()))
        return f"{quantified}{body}"

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def matches(self, db: Instance) -> Iterator[dict[str, Hashable]]:
        """Enumerate homomorphisms from the query into the instance."""
        yield from _match_atoms(list(self.atoms), db, {})

    def holds_in(self, db: Instance) -> bool:
        """Whether ``D |= Q``."""
        return next(self.matches(db), None) is not None

    def grounding_sets(self, db: Instance) -> set[frozenset[TupleId]]:
        """The set of fact-sets witnessing the query — the clauses of the
        monotone DNF lineage of ``Q`` on ``D``."""
        witnesses: set[frozenset[TupleId]] = set()
        for match in self.matches(db):
            facts = frozenset(
                TupleId(
                    atom.relation,
                    tuple(
                        term.value if isinstance(term, Constant) else match[term]
                        for term in atom.terms
                    ),
                )
                for atom in self.atoms
            )
            witnesses.add(facts)
        return witnesses


def _match_atoms(
    atoms: list[Atom],
    db: Instance,
    binding: dict[str, Hashable],
) -> Iterator[dict[str, Hashable]]:
    """Index-backed join matching.

    At every depth the most constrained remaining atom is matched next
    (most bound positions, then smallest relation), its candidates are
    fetched from the relation's hash index on the bound positions, and the
    shared binding is extended in place with undo on backtrack — no
    per-candidate dict copies, no full-relation scans.
    """
    relations = []
    for atom in atoms:
        try:
            relation = db.relation(atom.relation)
        except KeyError:
            return  # Empty (undeclared) relation: no matches.
        if relation.arity != len(atom.terms):
            return  # Arity mismatch: no fact can unify.
        relations.append(relation)
    binding = dict(binding)  # private, mutated with undo below

    def bound_positions(index: int) -> tuple[int, ...]:
        atom = atoms[index]
        return tuple(
            p
            for p, term in enumerate(atom.terms)
            if isinstance(term, Constant) or term in binding
        )

    def recurse(remaining: list[int]) -> Iterator[dict[str, Hashable]]:
        if not remaining:
            yield dict(binding)
            return
        index = min(
            remaining,
            key=lambda i: (
                -len(bound_positions(i)), len(relations[i]), i
            ),
        )
        atom, relation = atoms[index], relations[index]
        positions = bound_positions(index)
        key = tuple(
            term.value if isinstance(term, Constant) else binding[term]
            for term in (atom.terms[p] for p in positions)
        )
        rest = [i for i in remaining if i != index]
        fixed = frozenset(positions)
        for values in relation.lookup(positions, key):
            added: list[str] = []
            consistent = True
            for p, value in enumerate(values):
                if p in fixed:
                    continue  # Matched by the index probe.
                term = atom.terms[p]  # Unbound ⇒ a variable name.
                if term in binding:
                    if binding[term] != value:  # Repeated var in this atom.
                        consistent = False
                        break
                else:
                    binding[term] = value
                    added.append(term)
            if consistent:
                yield from recurse(rest)
            for term in added:
                del binding[term]

    yield from recurse(list(range(len(atoms))))

"""Lineage computation for queries on relational instances.

The lineage ``Lin(Q, D)`` (Section 2, [18]) is the Boolean function on the
facts of ``D`` mapping each sub-instance to whether it satisfies ``Q``.
For a UCQ the lineage is monotone and its DNF is the union of grounding
sets; for a general Boolean combination of CQs the lineage is the same
combination of the component lineages.

This module provides the *polynomial-time but untamed* representations:

* :func:`cq_lineage_circuit` — the monotone DNF circuit of one CQ (neither
  deterministic nor decomposable in general);
* :func:`hquery_lineage_circuit_naive` — the Boolean-combination circuit of
  an H-query built from per-``h_{k,i}`` DNFs.

These are the inputs a general-purpose weighted model counter would start
from; the point of the paper (and of :mod:`repro.pqe.intensional`) is to
produce *d-D* lineage circuits instead, on which probability is linear.
The naive circuits serve as semantic baselines in tests (same models) and
as the DNF baseline the paper mentions when discussing lower bounds
(Section 6: "the lineage of any UCQ ... can always be computed in PTIME as
a DNF").
"""

from __future__ import annotations

import itertools

from repro.circuits.circuit import Circuit
from repro.circuits.operations import copy_into
from repro.core.boolean_function import BooleanFunction
from repro.db.relation import Instance
from repro.queries.cq import ConjunctiveQuery
from repro.queries.hqueries import HQuery


def cq_lineage_circuit(query: ConjunctiveQuery, db: Instance) -> Circuit:
    """The monotone DNF lineage circuit of a CQ: one ∧-gate per match, one
    top ∨-gate.  Polynomial in ``|D|`` for a fixed query."""
    circuit = Circuit()
    clauses = []
    for witness in sorted(query.grounding_sets(db), key=repr):
        clauses.append(
            circuit.add_and([circuit.add_var(t) for t in sorted(witness)])
        )
    circuit.set_output(circuit.add_or(clauses))
    return circuit


def hquery_lineage_circuit_naive(query: HQuery, db: Instance) -> Circuit:
    """The lineage of ``Q_phi`` as the literal Boolean combination of the
    per-``h_{k,i}`` DNF lineages, with ``phi`` expanded in (non-minimized)
    DNF over its satisfying valuations:

    ``Lin(Q_phi) = ∨_{nu |= phi} [ ∧_{i in nu} Lin(h_i) ∧ ∧_{i not in nu} ¬Lin(h_i) ]``

    The top ∨ *is* deterministic (distinct h-patterns are exclusive events)
    but the ∧-gates are massively non-decomposable — this is the formal
    sense in which the naive lineage is not a d-D.  Tests use it as a
    semantic oracle; benches use it as the "what knowledge compilation must
    beat" baseline.
    """
    circuit = Circuit()
    sub_outputs = []
    for i in range(query.k + 1):
        sub_circuit = cq_lineage_circuit(query.subquery(i), db)
        sub_outputs.append(copy_into(sub_circuit, circuit))
    branches = []
    for mask in query.phi.satisfying_masks():
        literals = []
        for i in range(query.k + 1):
            if mask >> i & 1:
                literals.append(sub_outputs[i])
            else:
                literals.append(circuit.add_not(sub_outputs[i]))
        branches.append(circuit.add_and(literals))
    circuit.set_output(circuit.add_or(branches))
    return circuit


def ucq_lineage_dnf_circuit(query: HQuery, db: Instance) -> Circuit:
    """For a monotone ``phi`` (H+-query): the pure positive-DNF lineage,
    one clause per union-of-witnesses across the minimized DNF of ``phi``.

    This is the PTIME DNF representation the paper invokes when relating
    d-D lower bounds to the DNF-vs-d-DNNF separation problem.

    :raises ValueError: if the query is not a UCQ.
    """
    if not query.is_ucq():
        raise ValueError("positive DNF lineage requires a monotone phi")
    circuit = Circuit()
    clauses = []
    for clause in query.phi.minimized_dnf():
        # The UCQ disjunct for this clause is the conjunction of the h_i,
        # i in clause; its witnesses are products of per-h_i witnesses.
        witness_sets = [
            sorted(query.subquery(i).grounding_sets(db), key=repr)
            for i in sorted(clause)
        ]
        clauses.extend(
            circuit.add_and(
                [circuit.add_var(t) for t in sorted(frozenset().union(*combo))]
            )
            for combo in _product(witness_sets)
        )
    circuit.set_output(circuit.add_or(clauses))
    return circuit


def _product(witness_sets: list[list[frozenset]]) -> list[tuple[frozenset, ...]]:
    if not witness_sets:
        return []
    return list(itertools.product(*witness_sets))


def lineage_equivalent(
    circuit_a: Circuit, circuit_b: Circuit, db: Instance
) -> bool:
    """Whether two lineage circuits over the facts of ``db`` agree on every
    sub-instance (exponential; for tests)."""
    tuple_ids = db.tuple_ids()
    if len(tuple_ids) > 20:
        raise ValueError("equivalence check limited to 20 tuples")
    for mask in range(1 << len(tuple_ids)):
        assignment = {
            tuple_ids[j]: bool(mask >> j & 1) for j in range(len(tuple_ids))
        }
        if circuit_a.evaluate(assignment) != circuit_b.evaluate(assignment):
            return False
    return True


def lineage_truth_table_of_circuit(
    circuit: Circuit, db: Instance
) -> tuple[list, BooleanFunction]:
    """Tabulate a lineage circuit over the facts of ``db`` into a
    :class:`BooleanFunction` (variable ``j`` = fact ``j`` of the returned
    list); exponential, for tests."""
    tuple_ids = db.tuple_ids()
    if len(tuple_ids) > 22:
        raise ValueError("truth table limited to 22 tuples")
    table = 0
    for mask in range(1 << len(tuple_ids)):
        assignment = {
            tuple_ids[j]: bool(mask >> j & 1) for j in range(len(tuple_ids))
        }
        if circuit.evaluate(assignment):
            table |= 1 << mask
    return tuple_ids, BooleanFunction(len(tuple_ids), table)

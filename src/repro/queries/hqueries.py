"""The H-queries: Boolean combinations of the Dalvi–Suciu queries h_{k,i}.

Definition 3.1 fixes, for each k >= 1, the conjunctive queries

* ``h_{k,0} = ∃x∃y R(x) ∧ S1(x,y)``
* ``h_{k,i} = ∃x∃y Si(x,y) ∧ Si+1(x,y)`` for ``1 <= i < k``
* ``h_{k,k} = ∃x∃y Sk(x,y) ∧ T(y)``

and Definition 3.2 builds, from any Boolean function ``phi`` on variables
``V = {0..k}``, the query ``Q_phi = phi[i -> h_{k,i}]``.  ``Q_phi`` holds in
an instance iff ``phi`` holds on the valuation recording which ``h_{k,i}``
hold.  The class H (resp. H+) collects the ``Q_phi`` over all (resp. all
monotone) ``phi``.

This module implements the queries, their evaluation, and their exact
lineage over any instance — both as a ground-truth truth table (exponential,
for validation) and as a monotone DNF circuit per ``h_{k,i}`` (polynomial).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.boolean_function import BooleanFunction
from repro.db.relation import Instance, TupleId
from repro.queries.cq import Atom, ConjunctiveQuery


def h_query(k: int, i: int) -> ConjunctiveQuery:
    """The conjunctive query ``h_{k,i}`` of Definition 3.1."""
    if k < 1:
        raise ValueError(f"the paper fixes k >= 1, got {k}")
    if not 0 <= i <= k:
        raise ValueError(f"h_{{k,i}} requires 0 <= i <= k, got i = {i}")
    if i == 0:
        return ConjunctiveQuery(
            (Atom("R", ("x",)), Atom("S1", ("x", "y")))
        )
    if i == k:
        return ConjunctiveQuery(
            (Atom(f"S{k}", ("x", "y")), Atom("T", ("y",)))
        )
    return ConjunctiveQuery(
        (Atom(f"S{i}", ("x", "y")), Atom(f"S{i + 1}", ("x", "y")))
    )


@dataclass(frozen=True)
class HQuery:
    """An H-query ``Q_phi`` (Definition 3.2).

    ``phi.nvars`` must equal ``k + 1``; variable ``i`` of ``phi`` stands for
    the query ``h_{k,i}``.
    """

    k: int
    phi: BooleanFunction
    _subqueries: tuple[ConjunctiveQuery, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if self.phi.nvars != self.k + 1:
            raise ValueError(
                f"phi has {self.phi.nvars} variables; expected k+1 = {self.k + 1}"
            )
        object.__setattr__(
            self,
            "_subqueries",
            tuple(h_query(self.k, i) for i in range(self.k + 1)),
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def subquery(self, i: int) -> ConjunctiveQuery:
        """The conjunctive query ``h_{k,i}``."""
        return self._subqueries[i]

    def is_ucq(self) -> bool:
        """Whether ``Q_phi`` is (equivalent to) a UCQ, i.e. ``phi`` is
        monotone — membership in H+."""
        return self.phi.is_monotone()

    def __str__(self) -> str:
        sat = ", ".join(
            "{" + ",".join(map(str, sorted(s))) + "}"
            for s in self.phi.satisfying_sets()
        )
        return f"Q_phi(k={self.k}, SAT(phi)={{{sat}}})"

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def h_pattern(self, db: Instance) -> int:
        """The valuation (as a mask) recording which ``h_{k,i}`` hold in
        ``db`` — the paper's substitution ``i -> h_{k,i}``."""
        pattern = 0
        for i, subquery in enumerate(self._subqueries):
            if subquery.holds_in(db):
                pattern |= 1 << i
        return pattern

    def holds_in(self, db: Instance) -> bool:
        """Whether ``D |= Q_phi``."""
        return bool(self.phi.table >> self.h_pattern(db) & 1)

    def lineage_truth_table(
        self, db: Instance
    ) -> tuple[list[TupleId], BooleanFunction]:
        """Ground-truth lineage ``Lin(Q_phi, D)`` as a Boolean function over
        the facts of ``db`` (variable ``j`` of the function is fact ``j`` of
        the returned list).

        Exponential in ``|D|`` — the validation oracle for the compiled
        lineages of :mod:`repro.pqe.intensional`.
        """
        tuple_ids = db.tuple_ids()
        if len(tuple_ids) > 22:
            raise ValueError(
                f"refusing to enumerate 2^{len(tuple_ids)} sub-instances"
            )
        table = 0
        for mask in range(1 << len(tuple_ids)):
            present = frozenset(
                tuple_ids[j] for j in range(len(tuple_ids)) if mask >> j & 1
            )
            if self.holds_in(db.restrict_to(present)):
                table |= 1 << mask
        return tuple_ids, BooleanFunction(len(tuple_ids), table)


def q9(k: int = 3) -> HQuery:
    """The paper's running example (Example 3.3): Dalvi and Suciu's query
    ``q_9``, i.e. ``Q_{phi_9}`` with
    ``phi_9 = (2∨3) ∧ (0∨3) ∧ (1∨3) ∧ (0∨1∨2)`` on ``V = {0,1,2,3}``.

    ``q_9`` is the simplest safe H+-query whose extensional evaluation needs
    the Möbius inversion formula (its CNF lattice is Figure 2).
    """
    if k != 3:
        raise ValueError("q_9 is defined for k = 3")
    phi = BooleanFunction.from_cnf(4, [{2, 3}, {0, 3}, {1, 3}, {0, 1, 2}])
    return HQuery(3, phi)


def phi_9() -> BooleanFunction:
    """The Boolean function ``phi_9`` of Example 3.3."""
    return BooleanFunction.from_cnf(4, [{2, 3}, {0, 3}, {1, 3}, {0, 1, 2}])

"""Queries: conjunctive queries, the ``h_{k,i}`` family, H-queries and
lineage computation."""

from repro.queries.cq import Atom, ConjunctiveQuery, Constant
from repro.queries.hqueries import HQuery, h_query, phi_9, q9
from repro.queries.ucq import UnionOfCQs, conjoin_cqs, hquery_to_ucq
from repro.queries.lineage import (
    cq_lineage_circuit,
    hquery_lineage_circuit_naive,
    lineage_equivalent,
    lineage_truth_table_of_circuit,
    ucq_lineage_dnf_circuit,
)

__all__ = [
    "Atom",
    "UnionOfCQs",
    "ConjunctiveQuery",
    "Constant",
    "HQuery",
    "conjoin_cqs",
    "cq_lineage_circuit",
    "h_query",
    "hquery_to_ucq",
    "hquery_lineage_circuit_naive",
    "lineage_equivalent",
    "lineage_truth_table_of_circuit",
    "phi_9",
    "q9",
    "ucq_lineage_dnf_circuit",
]
